// Streaming skip-scan for document projection.
//
// When a ProjectionFilter proves a start tag's entire subtree irrelevant to
// every installed query, the SaxParser switches to the SkipScanner: a raw
// scanner that memchr-races to the matching end tag tracking only element
// depth, comment/CDATA/PI state, and the structure needed to resume normal
// parsing afterwards. It performs no attribute parsing, no entity decoding,
// no symbol interning, and emits no events — only a SkipReport whose
// `node_ids` count lets dense-id consumers (core::DocumentCursor) stay
// byte-identical to a full parse.
//
// Divergence contract: the scanner checks only the structure it must (tag
// nesting, terminated constructs, the depth limit), so a document that the
// full parser would reject — mismatched end-tag names, malformed
// attributes, a literal "]]>" in character data, bad references — may be
// accepted in skipped regions. Whenever the full parser accepts a
// document, a projected parse accepts it too and produces identical query
// results; differential tests therefore compare only on baseline success.

#ifndef XAOS_XML_SKIP_SCANNER_H_
#define XAOS_XML_SKIP_SCANNER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "xml/sax_event.h"
#include "xml/structural_scanner.h"

namespace xaos::xml {

// Per-start-tag relevance oracle the evaluator installs via
// ParserOptions::projection_filter. `open_depth` is the number of elements
// already open when the tag appears (the document element sits at 0).
// Returning true asserts that no node in the element's subtree — the
// element itself, its attributes, text, and descendants — can contribute to
// any match; the parser then skips the subtree without events. Stateful
// implementations (query::ProjectionGate tracks a kept-subtree watermark)
// are reset through the handler's StartDocument/abort path.
class ProjectionFilter {
 public:
  virtual ~ProjectionFilter() = default;
  virtual bool ShouldSkipSubtree(std::string_view name, size_t open_depth) = 0;
};

// Resumable scanner over one skipped subtree. The parser seeds it with the
// report for the already-consumed start tag, then feeds it unconsumed
// buffer suffixes until the matching end tag (kDone) or an error. Between
// calls the scanner holds run-classification state, so chunk boundaries may
// land anywhere; bytes of an incomplete construct are left unconsumed and
// rescanned when more input arrives (same policy as the full parser).
class SkipScanner {
 public:
  enum class State { kScanning, kDone, kError };

  // Starts a skip whose start tag the parser consumed already. `initial`
  // carries that tag's element/id/byte counts; `base_open_depth` is the
  // open-element count outside the skip (the skipped root would sit at that
  // depth); `max_depth` is ParserLimits::max_depth, still enforced inside
  // the skip. `count_whitespace_runs` mirrors
  // ParserOptions::report_whitespace_text: when set, all-whitespace text
  // runs would have been reported and so consume a node id.
  void Begin(const SkipReport& initial, size_t base_open_depth, int max_depth,
             bool count_whitespace_runs);

  // Scans as much of `input` as possible. Sets *consumed to the byte count
  // the caller should consume (on kError: the offset of the offending
  // construct, so the parser's line/column land on it).
  State Scan(std::string_view input, size_t* consumed);

  const SkipReport& report() const { return report_; }

  // After kError: true if the failure is a resource-limit rejection
  // (kResourceExhausted) rather than a well-formedness error.
  bool limit_error() const { return limit_error_; }
  const std::string& error_message() const { return error_message_; }

  // Number of quoted attribute values in a start-tag body. On any tag the
  // full parser accepts, every quote character delimits an attribute value,
  // so pairing quotes counts attributes exactly.
  static uint64_t CountQuotedValues(std::string_view tag_body);

  // Pins the structural-scanner backend (the parser forwards its own choice
  // so skipped and parsed regions classify identically).
  void SetScannerBackend(ScannerBackend backend) {
    scanner_.SetBackend(backend);
  }

  // Bytes this scanner's structural kernel classified since the last call;
  // the parser folds them into xaos_scanner_bytes_classified_total.
  uint64_t TakeScannerBytes() { return scanner_.TakeBytesClassified(); }

  // Drops cached block masks; the parser calls this when its buffer (which
  // Scan()'s input views into) is compacted or grown.
  void InvalidateScannerCache() { scanner_.InvalidateCache(); }

 private:
  State Error(std::string message, size_t at, size_t* consumed);
  State LimitError(std::string message, size_t at, size_t* consumed);
  // Hot per-run/per-tag paths, inlined: the byte-level classification only
  // runs while a run's whitespace-ness is still undecided.
  void ProcessText(std::string_view run) {
    if (run.empty()) return;
    run_has_content_ = true;
    if (count_ws_runs_ || run_non_ws_) return;
    const char c0 = run.front();
    if (c0 != ' ' && c0 != '\t' && c0 != '\r' && c0 != '\n' && c0 != '&') {
      run_non_ws_ = true;  // decisive first byte: the common real-text case
      return;
    }
    ClassifyText(run);
  }
  void FlushRun() {
    if (run_has_content_ && (count_ws_runs_ || run_non_ws_)) {
      ++report_.node_ids;
    }
    run_has_content_ = false;
    run_non_ws_ = false;
  }
  void ClassifyText(std::string_view run);
  void ProcessCData(std::string_view content);

  // Structural front-end for the fused start-tag scan and CDATA
  // classification. Text runs keep the memchr + early-out ClassifyText
  // walk: the walk stops at the first decisive byte, which full-block
  // classification cannot beat.
  StructuralScanner scanner_;

  SkipReport report_;
  size_t base_open_depth_ = 0;
  int max_depth_ = 0;
  uint64_t depth_ = 0;  // open elements inside the skip, including its root
  bool count_ws_runs_ = false;
  // Classification of the current (possibly still growing) text run,
  // mirroring the full parser's coalesced pending-text accumulator: a run
  // consumes a node id iff it is non-empty and (count_ws_runs_ || not all
  // whitespace after reference decoding).
  bool run_has_content_ = false;
  bool run_non_ws_ = false;
  bool limit_error_ = false;
  std::string error_message_;
};

}  // namespace xaos::xml

#endif  // XAOS_XML_SKIP_SCANNER_H_
