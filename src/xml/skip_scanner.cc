#include "xml/skip_scanner.h"

#include <cstring>

#include "util/string_util.h"
#include "xml/entities.h"

namespace xaos::xml {
namespace {

constexpr size_t kNpos = std::string_view::npos;

bool IsXmlWs(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

// Whether a reference body (the text between '&' and ';') decodes to XML
// whitespace. Named references (&amp; &lt; &gt; &apos; &quot;) never do;
// numeric references do iff the code point is tab/LF/CR/space. Anything
// the decoder would reject is classified non-whitespace — the full parser
// rejects such documents, so the answer is never compared.
bool ReferenceIsWhitespace(std::string_view body) {
  if (body.size() < 2 || body[0] != '#') return false;
  uint32_t value = 0;
  size_t i = 1;
  if (body[1] == 'x' || body[1] == 'X') {
    for (i = 2; i < body.size(); ++i) {
      char c = body[i];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A') + 10;
      } else {
        return false;
      }
      if (value > 0x10FFFF) return false;
      value = value * 16 + digit;
    }
    if (i == 2) return false;
  } else {
    for (; i < body.size(); ++i) {
      char c = body[i];
      if (c < '0' || c > '9') return false;
      if (value > 0x10FFFF) return false;
      value = value * 10 + static_cast<uint32_t>(c - '0');
    }
  }
  return value == 0x20 || value == 0x9 || value == 0xA || value == 0xD;
}

}  // namespace

void SkipScanner::Begin(const SkipReport& initial, size_t base_open_depth,
                        int max_depth, bool count_whitespace_runs) {
  report_ = initial;
  base_open_depth_ = base_open_depth;
  max_depth_ = max_depth;
  depth_ = 1;
  count_ws_runs_ = count_whitespace_runs;
  run_has_content_ = false;
  run_non_ws_ = false;
  limit_error_ = false;
  error_message_.clear();
}

uint64_t SkipScanner::CountQuotedValues(std::string_view tag_body) {
  uint64_t count = 0;
  size_t i = 0;
  while (i < tag_body.size()) {
    const char* base = tag_body.data() + i;
    size_t avail = tag_body.size() - i;
    const char* q1 = static_cast<const char*>(std::memchr(base, '"', avail));
    const char* q2 = static_cast<const char*>(std::memchr(base, '\'', avail));
    const char* quote = (q1 != nullptr && (q2 == nullptr || q1 < q2)) ? q1 : q2;
    if (quote == nullptr) break;
    const char* end = tag_body.data() + tag_body.size();
    const char* close = static_cast<const char*>(std::memchr(
        quote + 1, *quote, static_cast<size_t>(end - (quote + 1))));
    if (close == nullptr) break;  // unterminated value: full parser rejects
    ++count;
    i = static_cast<size_t>(close + 1 - tag_body.data());
  }
  return count;
}

// Decides whether a still-undecided run stays all-whitespace. Only called
// until the first non-whitespace byte settles the classification.
void SkipScanner::ClassifyText(std::string_view run) {
  size_t i = 0;
  while (i < run.size()) {
    char c = run[i];
    if (IsXmlWs(c)) {
      ++i;
      continue;
    }
    if (c != '&') {
      run_non_ws_ = true;
      return;
    }
    size_t semi = run.find(';', i + 1);
    if (semi == kNpos || semi - i - 1 > kMaxReferenceBodyBytes) {
      run_non_ws_ = true;  // malformed/overlong: full parser rejects
      return;
    }
    if (!ReferenceIsWhitespace(run.substr(i + 1, semi - i - 1))) {
      run_non_ws_ = true;
      return;
    }
    i = semi + 1;
  }
}

void SkipScanner::ProcessCData(std::string_view content) {
  if (content.empty()) return;
  run_has_content_ = true;
  if (count_ws_runs_ || run_non_ws_) return;
  if (!scanner_.ScanCData(content.data(), content.size(), 0, content.size())
           .all_ws) {
    run_non_ws_ = true;
  }
}

SkipScanner::State SkipScanner::Error(std::string message, size_t at,
                                      size_t* consumed) {
  error_message_ = std::move(message);
  *consumed = at;
  report_.bytes += at;
  return State::kError;
}

SkipScanner::State SkipScanner::LimitError(std::string message, size_t at,
                                           size_t* consumed) {
  limit_error_ = true;
  return Error(std::move(message), at, consumed);
}

SkipScanner::State SkipScanner::Scan(std::string_view input,
                                     size_t* consumed) {
  constexpr size_t kBlk = kScannerBlockBytes;
  size_t i = 0;
  State result = State::kScanning;
  // Block-local mask window: one Scan call walks `input` strictly forward,
  // so a single classified block held in locals replaces cache probes —
  // every tag in a block reuses the same masks for free.
  BlockMasks m{};
  size_t cur_bs = kNpos;
  auto load_block = [&](size_t bs) {
    const size_t len = input.size() - bs;
    if (len >= kBlk) {
      scanner_.ClassifyFullBlock(input.data() + bs, &m);
    } else {
      scanner_.ClassifyTail(input.data() + bs, len, &m);
    }
    cur_bs = bs;
  };
  // Offset of the next '>' at or after `f`, or kNpos if input ends first.
  auto next_gt = [&](size_t f) -> size_t {
    for (size_t bs = f & ~(kBlk - 1); bs < input.size(); bs += kBlk) {
      if (bs != cur_bs) load_block(bs);
      uint64_t g = m.gt;
      if (bs < f) g &= ~0ull << (f - bs);
      if (g != 0) return bs + static_cast<unsigned>(__builtin_ctzll(g));
    }
    return kNpos;
  };
  while (i < input.size()) {
    if (input[i] != '<') {
      // Character data until the next markup. Only its whitespace-ness
      // matters, so a trailing incomplete reference is held back exactly
      // like the full parser holds it (its decoded value could be either).
      const char* from = input.data() + i;
      size_t avail = input.size() - i;
      const char* lt = static_cast<const char*>(std::memchr(from, '<', avail));
      size_t run = (lt == nullptr) ? avail : static_cast<size_t>(lt - from);
      std::string_view text(from, run);
      if (lt == nullptr) {
        size_t amp = text.rfind('&');
        if (amp != kNpos && text.find(';', amp) == kNpos &&
            text.size() - amp <= kMaxReferenceBodyBytes + 1) {
          text = text.substr(0, amp);
        }
      }
      ProcessText(text);
      i += text.size();
      if (lt == nullptr) break;
      continue;
    }
    std::string_view rest = input.substr(i);
    if (rest.size() < 2) break;
    if (rest[1] == '/') {
      size_t gt = next_gt(i + 2);
      if (gt == kNpos) break;
      FlushRun();
      i = gt + 1;
      if (--depth_ == 0) {
        result = State::kDone;
        break;
      }
      continue;
    }
    if (rest[1] == '?') {
      size_t end = rest.find("?>", 2);
      if (end == kNpos) break;
      i += end + 2;
      continue;
    }
    if (rest[1] == '!') {
      // Inside an element only comments and CDATA sections are legal, so
      // anything else errors once enough bytes arrive to classify it.
      if (rest.size() < 9 &&
          (StartsWith(std::string_view("<!--").substr(0, rest.size()), rest) ||
           StartsWith(std::string_view("<![CDATA[").substr(0, rest.size()),
                      rest))) {
        break;
      }
      if (StartsWith(rest, "<!--")) {
        size_t end = rest.find("-->", 4);
        if (end == kNpos) break;
        i += end + 3;
        continue;
      }
      if (StartsWith(rest, "<![CDATA[")) {
        size_t end = rest.find("]]>", 9);
        if (end == kNpos) break;
        ProcessCData(rest.substr(9, end - 9));
        i += end + 3;
        continue;
      }
      return Error("unsupported markup declaration", i, consumed);
    }
    // Start tag: the quote-aware '>' search and the quoted-attribute-value
    // count, fused into one walk over the block masks (this runs for every
    // skipped element). A stray unquoted '<' fails the instant it is seen.
    // Blocks without single quotes take the branchless prefix-xor path;
    // single-quoted values drop to a per-structural-bit walk.
    const size_t f = i + 1;
    uint64_t quoted = 0;
    char quote = 0;
    size_t tag_gt = kNpos;
    for (size_t bs = f & ~(kBlk - 1); bs < input.size(); bs += kBlk) {
      if (bs != cur_bs) load_block(bs);
      uint64_t valid = ~0ull;
      if (bs < f) valid = ~0ull << (f - bs);
      if ((m.squote & valid) == 0 && quote != '\'') {
        const uint64_t dq = m.dquote & valid;
        const uint64_t inside =
            ScannerPrefixXor(dq) ^ (quote != 0 ? ~0ull : 0ull);
        const uint64_t gt_eff = m.gt & valid & ~inside;
        const uint64_t lt_eff = m.lt & valid & ~inside;
        const unsigned first_gt =
            gt_eff != 0 ? static_cast<unsigned>(__builtin_ctzll(gt_eff)) : 64;
        const unsigned first_lt =
            lt_eff != 0 ? static_cast<unsigned>(__builtin_ctzll(lt_eff)) : 64;
        if (first_gt < first_lt) {
          const uint64_t below =
              first_gt == 0 ? 0 : (~0ull >> (kBlk - first_gt));
          quoted += static_cast<uint64_t>(
              __builtin_popcountll(dq & ~inside & below));
          tag_gt = bs + first_gt;
          break;
        }
        if (first_lt < 64) return Error("'<' inside tag", i, consumed);
        quoted += static_cast<uint64_t>(__builtin_popcountll(dq & ~inside));
        quote = (inside >> 63) != 0 ? '"' : 0;
        continue;
      }
      uint64_t structural = (m.lt | m.gt | m.dquote | m.squote) & valid;
      while (structural != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(structural));
        structural &= structural - 1;
        const uint64_t b = 1ull << bit;
        if (quote != 0) {
          if ((quote == '"' && (m.dquote & b) != 0) ||
              (quote == '\'' && (m.squote & b) != 0)) {
            quote = 0;
            ++quoted;
          }
          continue;
        }
        if ((m.gt & b) != 0) {
          tag_gt = bs + bit;
          break;
        }
        if ((m.lt & b) != 0) return Error("'<' inside tag", i, consumed);
        quote = (m.dquote & b) != 0 ? '"' : '\'';
      }
      if (tag_gt != kNpos) break;
    }
    if (tag_gt == kNpos) break;  // tag still incomplete: wait for more input
    bool self_closing = tag_gt - i >= 2 && input[tag_gt - 1] == '/';
    FlushRun();
    report_.elements += 1;
    report_.node_ids += 1 + quoted;
    if (!self_closing) {
      if (base_open_depth_ + depth_ >= static_cast<uint64_t>(max_depth_)) {
        return LimitError("maximum element depth of " +
                              std::to_string(max_depth_) + " exceeded",
                          i, consumed);
      }
      ++depth_;
    }
    i = tag_gt + 1;
  }
  *consumed = i;
  report_.bytes += i;
  return result;
}

}  // namespace xaos::xml
