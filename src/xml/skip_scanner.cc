#include "xml/skip_scanner.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/string_util.h"
#include "xml/entities.h"

namespace xaos::xml {
namespace {

constexpr size_t kNpos = std::string_view::npos;

bool IsXmlWs(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

// Whether a reference body (the text between '&' and ';') decodes to XML
// whitespace. Named references (&amp; &lt; &gt; &apos; &quot;) never do;
// numeric references do iff the code point is tab/LF/CR/space. Anything
// the decoder would reject is classified non-whitespace — the full parser
// rejects such documents, so the answer is never compared.
bool ReferenceIsWhitespace(std::string_view body) {
  if (body.size() < 2 || body[0] != '#') return false;
  uint32_t value = 0;
  size_t i = 1;
  if (body[1] == 'x' || body[1] == 'X') {
    for (i = 2; i < body.size(); ++i) {
      char c = body[i];
      uint32_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<uint32_t>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<uint32_t>(c - 'A') + 10;
      } else {
        return false;
      }
      if (value > 0x10FFFF) return false;
      value = value * 16 + digit;
    }
    if (i == 2) return false;
  } else {
    for (; i < body.size(); ++i) {
      char c = body[i];
      if (c < '0' || c > '9') return false;
      if (value > 0x10FFFF) return false;
      value = value * 10 + static_cast<uint32_t>(c - '0');
    }
  }
  return value == 0x20 || value == 0x9 || value == 0xA || value == 0xD;
}

// Bytes that end the fast forward scan inside a start tag: the tag
// terminator, a quote opening an attribute value, or a stray '<'.
constexpr std::array<bool, 256> MakeTagSignificant() {
  std::array<bool, 256> table{};
  table[static_cast<unsigned char>('>')] = true;
  table[static_cast<unsigned char>('"')] = true;
  table[static_cast<unsigned char>('\'')] = true;
  table[static_cast<unsigned char>('<')] = true;
  return table;
}
constexpr std::array<bool, 256> kTagSignificant = MakeTagSignificant();

}  // namespace

void SkipScanner::Begin(const SkipReport& initial, size_t base_open_depth,
                        int max_depth, bool count_whitespace_runs) {
  report_ = initial;
  base_open_depth_ = base_open_depth;
  max_depth_ = max_depth;
  depth_ = 1;
  count_ws_runs_ = count_whitespace_runs;
  run_has_content_ = false;
  run_non_ws_ = false;
  limit_error_ = false;
  error_message_.clear();
}

uint64_t SkipScanner::CountQuotedValues(std::string_view tag_body) {
  uint64_t count = 0;
  size_t i = 0;
  while (i < tag_body.size()) {
    const char* base = tag_body.data() + i;
    size_t avail = tag_body.size() - i;
    const char* q1 = static_cast<const char*>(std::memchr(base, '"', avail));
    const char* q2 = static_cast<const char*>(std::memchr(base, '\'', avail));
    const char* quote = (q1 != nullptr && (q2 == nullptr || q1 < q2)) ? q1 : q2;
    if (quote == nullptr) break;
    const char* end = tag_body.data() + tag_body.size();
    const char* close = static_cast<const char*>(std::memchr(
        quote + 1, *quote, static_cast<size_t>(end - (quote + 1))));
    if (close == nullptr) break;  // unterminated value: full parser rejects
    ++count;
    i = static_cast<size_t>(close + 1 - tag_body.data());
  }
  return count;
}

// Decides whether a still-undecided run stays all-whitespace. Only called
// until the first non-whitespace byte settles the classification.
void SkipScanner::ClassifyText(std::string_view run) {
  size_t i = 0;
  while (i < run.size()) {
    char c = run[i];
    if (IsXmlWs(c)) {
      ++i;
      continue;
    }
    if (c != '&') {
      run_non_ws_ = true;
      return;
    }
    size_t semi = run.find(';', i + 1);
    if (semi == kNpos || semi - i - 1 > kMaxReferenceBodyBytes) {
      run_non_ws_ = true;  // malformed/overlong: full parser rejects
      return;
    }
    if (!ReferenceIsWhitespace(run.substr(i + 1, semi - i - 1))) {
      run_non_ws_ = true;
      return;
    }
    i = semi + 1;
  }
}

void SkipScanner::ProcessCData(std::string_view content) {
  if (content.empty()) return;
  run_has_content_ = true;
  if (count_ws_runs_ || run_non_ws_) return;
  if (!IsAllXmlWhitespace(content)) run_non_ws_ = true;
}

SkipScanner::State SkipScanner::Error(std::string message, size_t at,
                                      size_t* consumed) {
  error_message_ = std::move(message);
  *consumed = at;
  report_.bytes += at;
  return State::kError;
}

SkipScanner::State SkipScanner::LimitError(std::string message, size_t at,
                                           size_t* consumed) {
  limit_error_ = true;
  return Error(std::move(message), at, consumed);
}

SkipScanner::State SkipScanner::Scan(std::string_view input,
                                     size_t* consumed) {
  size_t i = 0;
  State result = State::kScanning;
  while (i < input.size()) {
    if (input[i] != '<') {
      // Character data until the next markup. Only its whitespace-ness
      // matters, so a trailing incomplete reference is held back exactly
      // like the full parser holds it (its decoded value could be either).
      const char* from = input.data() + i;
      size_t avail = input.size() - i;
      const char* lt = static_cast<const char*>(std::memchr(from, '<', avail));
      size_t run = (lt == nullptr) ? avail : static_cast<size_t>(lt - from);
      std::string_view text(from, run);
      if (lt == nullptr) {
        size_t amp = text.rfind('&');
        if (amp != kNpos && text.find(';', amp) == kNpos &&
            text.size() - amp <= kMaxReferenceBodyBytes + 1) {
          text = text.substr(0, amp);
        }
      }
      ProcessText(text);
      i += text.size();
      if (lt == nullptr) break;
      continue;
    }
    std::string_view rest = input.substr(i);
    if (rest.size() < 2) break;
    if (rest[1] == '/') {
      size_t gt = rest.find('>', 2);
      if (gt == kNpos) break;
      FlushRun();
      i += gt + 1;
      if (--depth_ == 0) {
        result = State::kDone;
        break;
      }
      continue;
    }
    if (rest[1] == '?') {
      size_t end = rest.find("?>", 2);
      if (end == kNpos) break;
      i += end + 2;
      continue;
    }
    if (rest[1] == '!') {
      // Inside an element only comments and CDATA sections are legal, so
      // anything else errors once enough bytes arrive to classify it.
      if (rest.size() < 9 &&
          (StartsWith(std::string_view("<!--").substr(0, rest.size()), rest) ||
           StartsWith(std::string_view("<![CDATA[").substr(0, rest.size()),
                      rest))) {
        break;
      }
      if (StartsWith(rest, "<!--")) {
        size_t end = rest.find("-->", 4);
        if (end == kNpos) break;
        i += end + 3;
        continue;
      }
      if (StartsWith(rest, "<![CDATA[")) {
        size_t end = rest.find("]]>", 9);
        if (end == kNpos) break;
        ProcessCData(rest.substr(9, end - 9));
        i += end + 3;
        continue;
      }
      return Error("unsupported markup declaration", i, consumed);
    }
    // Start tag: one forward pass finds the quote-aware '>' and counts the
    // quoted attribute values as it goes (the full parser's
    // FindStartTagEnd + CountQuotedValues, fused — this loop runs for
    // every skipped element, so the body is a table-driven byte scan with
    // memchr only for jumping over quoted values).
    const char* p = rest.data() + 1;
    const char* rest_end = rest.data() + rest.size();
    uint64_t quoted_values = 0;
    size_t tag_end = kNpos;
    bool self_closing = false;
    bool need_more = false;
    for (;;) {
      while (p < rest_end &&
             !kTagSignificant[static_cast<unsigned char>(*p)]) {
        ++p;
      }
      if (p == rest_end) {
        need_more = true;
        break;
      }
      char c = *p;
      if (c == '>') {
        tag_end = static_cast<size_t>(p - rest.data());
        self_closing = tag_end >= 2 && rest[tag_end - 1] == '/';
        break;
      }
      if (c == '<') return Error("'<' inside tag", i, consumed);
      const char* close = static_cast<const char*>(std::memchr(
          p + 1, c, static_cast<size_t>(rest_end - (p + 1))));
      if (close == nullptr) {
        need_more = true;
        break;
      }
      ++quoted_values;
      p = close + 1;
    }
    if (need_more) break;
    FlushRun();
    report_.elements += 1;
    report_.node_ids += 1 + quoted_values;
    if (!self_closing) {
      if (base_open_depth_ + depth_ >= static_cast<uint64_t>(max_depth_)) {
        return LimitError("maximum element depth of " +
                              std::to_string(max_depth_) + " exceeded",
                          i, consumed);
      }
      ++depth_;
    }
    i += tag_end + 1;
  }
  *consumed = i;
  report_.bytes += i;
  return result;
}

}  // namespace xaos::xml
