// Resolution of XML character and entity references, and escaping for
// serialization.

#ifndef XAOS_XML_ENTITIES_H_
#define XAOS_XML_ENTITIES_H_

#include <string>
#include <string_view>

#include "util/status.h"
#include "util/statusor.h"

namespace xaos::xml {

// Decodes the five predefined entity references (&amp; &lt; &gt; &apos;
// &quot;) and decimal/hexadecimal character references (&#NN; &#xHH;,
// emitted as UTF-8) in `text`. Returns a ParseError for malformed or
// unknown references.
StatusOr<std::string> DecodeReferences(std::string_view text);

// Escapes `text` for use as element character data: & < > are replaced by
// entity references.
std::string EscapeText(std::string_view text);

// Escapes `text` for use inside a double-quoted attribute value: also
// escapes the double quote, tab, CR and LF (the latter as character
// references, preserving them across attribute-value normalization).
std::string EscapeAttributeValue(std::string_view text);

// Encodes a Unicode code point as UTF-8, appending to `out`. Returns false
// for values outside the XML Char production (e.g. 0x0, surrogates).
bool AppendUtf8(uint32_t code_point, std::string* out);

}  // namespace xaos::xml

#endif  // XAOS_XML_ENTITIES_H_
