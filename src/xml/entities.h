// Resolution of XML character and entity references, and escaping for
// serialization.

#ifndef XAOS_XML_ENTITIES_H_
#define XAOS_XML_ENTITIES_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"
#include "util/statusor.h"

namespace xaos::xml {

// Longest reference body (the text between '&' and ';') we accept. The
// supported vocabulary is tiny — five predefined entities and character
// references of at most 8 digits — so anything longer is garbage; bounding
// the scan keeps a '&'-laden payload from turning reference resolution
// quadratic.
inline constexpr size_t kMaxReferenceBodyBytes = 32;

// Decodes the five predefined entity references (&amp; &lt; &gt; &apos;
// &quot;) and decimal/hexadecimal character references (&#NN; &#xHH;,
// emitted as UTF-8) in `text`. Returns a ParseError for malformed or
// unknown references, including any reference whose body exceeds
// kMaxReferenceBodyBytes (the ';' search never scans further than that).
// When `reference_count` is non-null it is incremented once per decoded
// reference, so callers can enforce a per-document budget.
StatusOr<std::string> DecodeReferences(std::string_view text,
                                       uint64_t* reference_count = nullptr);

// Returns the offset of the first byte forbidden in XML content — a C0
// control other than tab, LF or CR, which the Char production excludes —
// or npos. Applied to raw (undecoded) character data and attribute values;
// decoded character references are validated separately in AppendUtf8.
size_t FindForbiddenControlByte(std::string_view text);

// Escapes `text` for use as element character data: & < > are replaced by
// entity references.
std::string EscapeText(std::string_view text);

// Escapes `text` for use inside a double-quoted attribute value: also
// escapes the double quote, tab, CR and LF (the latter as character
// references, preserving them across attribute-value normalization).
std::string EscapeAttributeValue(std::string_view text);

// Encodes a Unicode code point as UTF-8, appending to `out`. Returns false
// for values outside the XML Char production (e.g. 0x0, surrogates).
bool AppendUtf8(uint32_t code_point, std::string* out);

}  // namespace xaos::xml

#endif  // XAOS_XML_ENTITIES_H_
