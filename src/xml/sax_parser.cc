#include "xml/sax_parser.h"

#include <cstring>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "util/string_util.h"
#include "util/symbol_table.h"
#include "xml/entities.h"

namespace xaos::xml {
namespace {

// Longest markup introducer we must see in full before we can classify the
// construct: "<![CDATA[".
constexpr size_t kMaxIntroducer = 9;

// Forwards every event to the wrapped handler, charging the time spent
// inside it to Phase::kMatch. The parser subtracts this from each Feed's
// wall time to get the parse share (see ParserOptions::phase_timers).
class MatchTimingHandler : public ContentHandler {
 public:
  MatchTimingHandler(ContentHandler* inner, obs::PhaseTimers* timers)
      : inner_(inner), timers_(timers) {}

  void StartDocument() override { Timed([&] { inner_->StartDocument(); }); }
  void EndDocument() override { Timed([&] { inner_->EndDocument(); }); }
  void StartElement(const QName& name, AttributeSpan attributes) override {
    Timed([&] { inner_->StartElement(name, attributes); });
  }
  void EndElement(std::string_view name) override {
    Timed([&] { inner_->EndElement(name); });
  }
  void Characters(std::string_view text) override {
    Timed([&] { inner_->Characters(text); });
  }
  void Comment(std::string_view text) override {
    Timed([&] { inner_->Comment(text); });
  }
  void ProcessingInstruction(std::string_view target,
                             std::string_view data) override {
    Timed([&] { inner_->ProcessingInstruction(target, data); });
  }
  void SkippedSubtree(const SkipReport& report) override {
    Timed([&] { inner_->SkippedSubtree(report); });
  }

 private:
  template <typename Fn>
  void Timed(Fn&& fn) {
    uint64_t start = obs::NowNs();
    fn();
    timers_->Add(obs::Phase::kMatch, obs::NowNs() - start);
  }

  ContentHandler* inner_;
  obs::PhaseTimers* timers_;
};

// Name-character membership tables: ScanName runs for every element and
// attribute name, so the per-byte test is one indexed load instead of a
// chain of range compares.
struct NameCharTable {
  bool start[256];
  bool part[256];
};

constexpr NameCharTable MakeNameCharTable() {
  NameCharTable t{};
  for (unsigned c = 0; c < 256; ++c) {
    const bool start = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':' || c >= 0x80;
    t.start[c] = start;
    t.part[c] =
        start || (c >= '0' && c <= '9') || c == '-' || c == '.';
  }
  return t;
}

constexpr NameCharTable kNameChars = MakeNameCharTable();

}  // namespace

SaxParser::SaxParser(ContentHandler* handler, ParserOptions options)
    : handler_(handler), options_(options) {
  if (options_.scanner_backend.has_value()) {
    scanner_.SetBackend(*options_.scanner_backend);
  }
  skip_scanner_.SetScannerBackend(scanner_.backend());
  if (options_.phase_timers != nullptr) {
    timing_wrapper_ =
        std::make_unique<MatchTimingHandler>(handler, options_.phase_timers);
    handler_ = timing_wrapper_.get();
  }
  projection_filter_ = options_.projection_filter;
  if (projection_filter_ != nullptr &&
      (!options_.coalesce_text || options_.report_comments ||
       options_.report_processing_instructions)) {
    // Skipping cannot reproduce these event streams exactly (see
    // ParserOptions::projection_filter); fall back to a full parse.
    projection_filter_ = nullptr;
    if (obs::Enabled()) {
      obs::MetricsRegistry::Default()
          .GetCounter("xaos_projection_disabled_total")
          ->Increment();
    }
  }
}

bool SaxParser::IsWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

bool SaxParser::IsNameStartChar(unsigned char c) {
  return kNameChars.start[c];
}

bool SaxParser::IsNameChar(unsigned char c) {
  return kNameChars.part[c];
}

util::Symbol SaxParser::InternName(std::string_view name) {
  if (name.size() <= sizeof(NameCacheSlot::bytes)) {
    NameCacheSlot& slot =
        name_cache_[(name.size() * 131 +
                     static_cast<unsigned char>(name.front()) * 31 +
                     static_cast<unsigned char>(name[name.size() / 2]) * 7 +
                     static_cast<unsigned char>(name.back())) &
                    (kNameCacheSlots - 1)];
    if (slot.len == name.size() &&
        std::memcmp(slot.bytes, name.data(), slot.len) == 0) {
      return slot.symbol;
    }
    const util::Symbol symbol = util::SymbolTable::Global().Intern(name);
    slot.len = static_cast<uint8_t>(name.size());
    std::memcpy(slot.bytes, name.data(), name.size());
    slot.symbol = symbol;
    return symbol;
  }
  return util::SymbolTable::Global().Intern(name);
}

size_t SaxParser::ScanName(std::string_view s, size_t i) {
  const char* d = s.data();
  if (i >= s.size() || !kNameChars.start[static_cast<unsigned char>(d[i])]) {
    return 0;
  }
  size_t n = i + 1;
  while (n < s.size() && kNameChars.part[static_cast<unsigned char>(d[n])]) {
    ++n;
  }
  return n - i;
}

void SaxParser::Consume(size_t n) {
  // Jump newline to newline with memchr instead of classifying every byte;
  // only the tail after the last newline contributes to the column.
  const char* p = buffer_.data() + pos_;
  size_t remaining = n;
  while (remaining > 0) {
    const char* nl = static_cast<const char*>(std::memchr(p, '\n', remaining));
    if (nl == nullptr) {
      column_ += static_cast<int>(remaining);
      break;
    }
    ++line_;
    column_ = 1;
    remaining -= static_cast<size_t>(nl - p) + 1;
    p = nl + 1;
  }
  pos_ += n;
  seen_any_content_ = true;
}

void SaxParser::ConsumeCounted(size_t n, uint32_t newlines, size_t last_nl) {
  // The structural scan already counted the span's newlines; fold them in
  // without re-reading a single byte.
  if (newlines > 0) {
    line_ += static_cast<int>(newlines);
    column_ = static_cast<int>(n - last_nl);
  } else {
    column_ += static_cast<int>(n);
  }
  pos_ += n;
  seen_any_content_ = true;
}

void SaxParser::MaterializeTextView() {
  if (!text_in_view_) return;
  text_accum_.assign(text_view_.data(), text_view_.size());
  text_in_view_ = false;
  text_view_ = {};
}

SaxParser::Progress SaxParser::Fail(std::string message) {
  return FailWith(StatusCode::kParseError, std::move(message));
}

SaxParser::Progress SaxParser::FailLimit(std::string message) {
  if (obs::Enabled()) {
    obs::MetricsRegistry::Default()
        .GetCounter("xaos_limit_rejections_total")
        ->Increment();
  }
  return FailWith(StatusCode::kResourceExhausted, std::move(message));
}

SaxParser::Progress SaxParser::FailWith(StatusCode code, std::string message) {
  error_ = Status(code, message + " at line " + std::to_string(line_) +
                            ", column " + std::to_string(column_));
  if (obs::Enabled()) {
    obs::MetricsRegistry::Default()
        .GetCounter("xaos_parse_errors_total")
        ->Increment();
  }
  return Progress::kError;
}

Status SaxParser::Feed(std::string_view chunk) {
  if (!error_.ok()) return error_;
  if (finished_) {
    return InvalidArgumentError("Feed() after Finish()");
  }
  // Phase split: everything in this call is parse time except what the
  // timing wrapper attributes to the match phase meanwhile.
  uint64_t start = 0, match_before = 0;
  obs::PhaseTimers* timers = options_.phase_timers;
  if (timers != nullptr) {
    start = obs::NowNs();
    match_before = timers->Ns(obs::Phase::kMatch);
  }
  obs::flight::ScopedSpan feed_span(obs::flight::SpanKind::kParse);
  if (feed_span.active()) {
    feed_span.span()->value = static_cast<int64_t>(chunk.size());
  }
  bytes_fed_ += chunk.size();
  const ParserLimits& limits = options_.limits;
  if (limits.max_total_bytes > 0 && bytes_fed_ > limits.max_total_bytes) {
    FailLimit("document exceeds " + std::to_string(limits.max_total_bytes) +
              " bytes");
    return error_;
  }
  if (!started_document_) {
    started_document_ = true;
    handler_->StartDocument();
  }
  // Compacting/growing buffer_ invalidates any zero-copy pending-text view
  // into it (copy the view out first) and every cached block mask.
  MaterializeTextView();
  // Compact the consumed prefix before growing the buffer.
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(chunk.data(), chunk.size());
  scanner_.InvalidateCache();
  skip_scanner_.InvalidateScannerCache();
  Progress p = Pump();
  // Whatever Pump left unconsumed is one incomplete token (plus a few
  // held-back text bytes); bound it so a stream that never closes a
  // construct cannot grow the buffer without limit.
  if (p != Progress::kError && limits.max_token_bytes > 0 &&
      buffer_.size() - pos_ > limits.max_token_bytes) {
    p = FailLimit("unterminated token exceeds " +
                  std::to_string(limits.max_token_bytes) + " bytes");
  }
  if (timers != nullptr) {
    uint64_t total = obs::NowNs() - start;
    uint64_t match = timers->Ns(obs::Phase::kMatch) - match_before;
    timers->Add(obs::Phase::kParse, total > match ? total - match : 0);
  }
  if (p == Progress::kError) return error_;
  return Status::Ok();
}

Status SaxParser::Finish() {
  if (!error_.ok()) return error_;
  if (finished_) return Status::Ok();
  if (!started_document_) {
    started_document_ = true;
    handler_->StartDocument();
  }
  finished_ = true;
  if (skip_active_) {
    Fail("unexpected end of document inside a skipped subtree");
    return error_;
  }
  if (pos_ < buffer_.size()) {
    // Leftover input that Pump() could not complete. Either it is trailing
    // text (legal only if whitespace at top level) or an unterminated token.
    std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
    if (rest.find('<') == std::string_view::npos &&
        rest.find('&') == std::string_view::npos) {
      if (Status s = AppendText(rest, /*decode=*/false); !s.ok()) {
        return error_ = s;
      }
      Consume(rest.size());
    } else {
      Fail("unexpected end of document inside markup");
      return error_;
    }
  }
  if (text_pending_) {
    if (!text_all_ws_) {
      Fail("character data outside the document element");
      return error_;
    }
    text_pending_ = false;
    text_in_view_ = false;
    text_view_ = {};
    text_accum_.clear();
    text_all_ws_ = true;
  }
  if (!open_offsets_.empty()) {
    Fail("unexpected end of document: unclosed element <" +
         std::string(TopOpenName()) + ">");
    return error_;
  }
  if (!seen_root_) {
    Fail("document has no root element");
    return error_;
  }
  uint64_t start = 0, match_before = 0;
  obs::PhaseTimers* timers = options_.phase_timers;
  if (timers != nullptr) {
    start = obs::NowNs();
    match_before = timers->Ns(obs::Phase::kMatch);
  }
  handler_->EndDocument();
  if (timers != nullptr) {
    uint64_t total = obs::NowNs() - start;
    uint64_t match = timers->Ns(obs::Phase::kMatch) - match_before;
    timers->Add(obs::Phase::kParse, total > match ? total - match : 0);
  }
  // Once per document, fold the parser's counters into the process-wide
  // registry; free when metrics are off.
  if (obs::Enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("xaos_parser_documents_total")->Increment();
    registry.GetCounter("xaos_parser_bytes_total")->Increment(bytes_fed_);
    registry.GetCounter("xaos_parser_elements_total")
        ->Increment(element_count_);
    registry.GetCounter("xaos_parser_text_events_total")
        ->Increment(text_event_count_);
    registry.GetCounter("xaos_scanner_bytes_classified_total")
        ->Increment(scanner_.TakeBytesClassified() +
                    skip_scanner_.TakeScannerBytes());
    registry
        .GetGauge(std::string("xaos_scanner_backend{backend=\"") +
                  ScannerBackendName(scanner_.backend()) + "\"}")
        ->Set(1);
  }
  return Status::Ok();
}

void SaxParser::EmitPendingTextSlow() {
  text_pending_ = false;
  std::string_view text =
      text_in_view_ ? text_view_ : std::string_view(text_accum_);
  if (!text.empty() &&
      (options_.report_whitespace_text || !text_all_ws_)) {
    ++text_event_count_;
    handler_->Characters(text);
  }
  text_in_view_ = false;
  text_view_ = {};
  text_accum_.clear();
  text_all_ws_ = true;
}

Status SaxParser::AppendTextPiece(std::string_view raw, bool decode,
                                  bool has_amp, bool has_ctl, bool all_ws) {
  if (open_offsets_.empty() && !all_ws) {
    Fail(seen_root_ ? "character data after the document element"
                    : "character data before the document element");
    return error_;
  }
  // The XML Char production excludes C0 controls (other than tab/LF/CR)
  // even inside CDATA; literal bytes get the same treatment decoded
  // character references always had.
  if (has_ctl) {
    Fail("control character in character data");
    return error_;
  }
  if (decode && has_amp && !raw.empty()) {
    StatusOr<std::string> decoded = DecodeReferences(raw, &entity_references_);
    if (!decoded.ok()) {
      Fail(decoded.status().message());
      return error_;
    }
    if (options_.limits.max_entity_references > 0 &&
        entity_references_ > options_.limits.max_entity_references) {
      FailLimit("entity-reference budget of " +
                std::to_string(options_.limits.max_entity_references) +
                " exceeded");
      return error_;
    }
    MaterializeTextView();
    text_accum_ += *decoded;
    // References may decode to whitespace (&#32;) or not (&amp;); only the
    // decoded bytes decide.
    text_all_ws_ = text_all_ws_ && IsAllXmlWhitespace(*decoded);
  } else if (!text_pending_) {
    // First (and in the common case only) piece of the run: keep it as a
    // view into buffer_ and skip the copy entirely.
    text_view_ = raw;
    text_in_view_ = true;
    text_all_ws_ = all_ws;
  } else {
    MaterializeTextView();
    text_accum_.append(raw.data(), raw.size());
    text_all_ws_ = text_all_ws_ && all_ws;
  }
  text_pending_ = true;
  if (!options_.coalesce_text) EmitPendingText();
  return Status::Ok();
}

Status SaxParser::AppendText(std::string_view raw, bool decode) {
  // Cold-path wrapper: derive the facts the hot paths already have. `raw`
  // never contains '<' here, so the text scan covers the whole span.
  TextFacts facts = scanner_.ScanText(raw.data(), raw.size(), 0);
  return AppendTextPiece(raw, decode, facts.has_amp, facts.has_ctl,
                         facts.all_ws);
}

SaxParser::Progress SaxParser::Pump() {
  while (pos_ < buffer_.size()) {
    Progress p = skip_active_          ? PumpSkip()
                 : (buffer_[pos_] == '<') ? ParseMarkup()
                                          : ParseText();
    if (p != Progress::kOk) {
      return p == Progress::kNeedMore ? Progress::kOk : p;
    }
  }
  return Progress::kOk;
}

SaxParser::Progress SaxParser::PumpSkip() {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  size_t consumed = 0;
  SkipScanner::State state = skip_scanner_.Scan(rest, &consumed);
  // Consume before reporting an error so line/column point at the
  // offending construct, as they do in normal parse mode.
  if (consumed > 0) Consume(consumed);
  switch (state) {
    case SkipScanner::State::kScanning:
      return Progress::kNeedMore;
    case SkipScanner::State::kDone:
      skip_active_ = false;
      return DeliverSkip(skip_scanner_.report());
    case SkipScanner::State::kError:
      return skip_scanner_.limit_error()
                 ? FailLimit(skip_scanner_.error_message())
                 : Fail(skip_scanner_.error_message());
  }
  return Progress::kError;  // unreachable
}

SaxParser::Progress SaxParser::DeliverSkip(const SkipReport& report) {
  if (open_offsets_.empty()) seen_root_ = true;
  if (obs::Enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("xaos_projection_subtrees_skipped_total")
        ->Increment();
    registry.GetCounter("xaos_projection_bytes_skipped_total")
        ->Increment(report.bytes);
  }
  if (obs::flight::Active()) {
    obs::flight::Span span;
    span.kind = obs::flight::SpanKind::kSkipScan;
    span.end_ns = obs::NowNs();
    // A self-closing skip never armed the scanner; render it as a point.
    span.begin_ns = skip_begin_ns_ != 0 ? skip_begin_ns_ : span.end_ns;
    span.value = static_cast<int64_t>(report.bytes);
    span.value2 = static_cast<int64_t>(report.elements);
    obs::flight::Emit(span);
  }
  skip_begin_ns_ = 0;
  handler_->SkippedSubtree(report);
  return Progress::kOk;
}

SaxParser::Progress SaxParser::ParseText() {
  const char* from = buffer_.data() + pos_;
  size_t avail = buffer_.size() - pos_;
  // One classification pass answers every question this function used to
  // make separate passes for: run end, '&', ']', control bytes,
  // whitespace-ness, newline accounting.
  TextFacts facts = scanner_.ScanText(buffer_.data(), buffer_.size(), pos_);
  bool saw_lt = facts.first_lt != std::string_view::npos;
  size_t run = saw_lt ? facts.first_lt : avail;
  std::string_view text(from, run);

  // "]]>" must not appear literally in character data (XML 1.0 §2.4);
  // only the CDATA-end scanner may consume it.
  if (facts.has_rbracket &&
      text.find("]]>") != std::string_view::npos) {
    return Fail("']]>' in character data");
  }
  if (!saw_lt) {
    // No markup yet. Hold back a trailing incomplete entity reference so it
    // is not split across chunks; everything before it can be emitted. An
    // overlong reference is not held back — the decode below rejects it
    // now instead of buffering an unbounded '&'-payload.
    size_t held = text.size();
    if (facts.has_amp) {
      size_t amp = text.rfind('&');
      if (amp != std::string_view::npos &&
          text.find(';', amp) == std::string_view::npos &&
          text.size() - amp <= kMaxReferenceBodyBytes + 1) {
        text = text.substr(0, amp);
      }
    }
    // Likewise hold back a trailing "]" / "]]" so a "]]>" split across
    // chunks is still caught by the scan above on the next Feed. Two
    // brackets suffice: any "]]>" ends with exactly these.
    if (facts.has_rbracket) {
      size_t trail = 0;
      while (trail < 2 && trail < text.size() &&
             text[text.size() - 1 - trail] == ']') {
        ++trail;
      }
      text.remove_suffix(trail);
    }
    if (text.empty()) return Progress::kNeedMore;
    // The facts described the untrimmed span; rescan the (chunk-boundary,
    // so cold) trimmed remainder, keeping the buffer's block grid.
    if (text.size() != held) {
      facts = scanner_.ScanText(buffer_.data(), pos_ + text.size(), pos_);
    }
  }
  if (Status s = AppendTextPiece(text, /*decode=*/true, facts.has_amp,
                                 facts.has_ctl, facts.all_ws);
      !s.ok()) {
    return Progress::kError;
  }
  ConsumeCounted(text.size(), facts.newlines, facts.last_nl);
  return saw_lt ? Progress::kOk : Progress::kNeedMore;
}

SaxParser::Progress SaxParser::ParseMarkup() {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  // Wait for enough characters to classify the construct unambiguously.
  if (rest.size() < 2) return Progress::kNeedMore;
  if (rest[1] == '/') {
    // End tags cannot contain quoted values, so the raw '>' mask answers
    // directly — and the block is almost always already classified (the
    // text scan that found this '<' touched it).
    size_t gt = scanner_.NextGt(buffer_.data(), buffer_.size(), pos_ + 2);
    if (gt == std::string_view::npos) return Progress::kNeedMore;
    return ParseEndTag(gt + 2);
  }
  if (rest[1] == '?') return ParsePi();
  if (rest[1] == '!') {
    if (rest.size() < kMaxIntroducer &&
        (StartsWith(std::string_view("<!--").substr(0, rest.size()), rest) ||
         StartsWith(std::string_view("<![CDATA[").substr(0, rest.size()),
                    rest) ||
         StartsWith(std::string_view("<!DOCTYPE").substr(0, rest.size()),
                    rest))) {
      return Progress::kNeedMore;
    }
    if (StartsWith(rest, "<!--")) return ParseComment();
    if (StartsWith(rest, "<![CDATA[")) return ParseCData();
    if (StartsWith(rest, "<!DOCTYPE")) return ParseDoctype();
    return Fail("unsupported markup declaration");
  }
  // Start tag: one structural scan over the body finds the quote-aware '>'
  // and, in the same pass, counts quoted attribute values and newlines.
  // Deferred mode: a stray '<' fails only once a '>' confirms the tag was
  // malformed rather than merely incomplete (the historic contract).
  TagScan scan = scanner_.ScanTag(buffer_.data(), buffer_.size(), pos_ + 1,
                                  /*immediate_lt=*/false);
  if (scan.kind == TagScan::Kind::kNeedMore) return Progress::kNeedMore;
  if (scan.kind == TagScan::Kind::kBadLt) return Fail("'<' inside tag");
  size_t end = 1 + scan.end;
  bool self_closing = end >= 2 && rest[end - 1] == '/';
  return ParseStartTag(end, self_closing, scan);
}

SaxParser::Progress SaxParser::ParseStartTag(size_t tag_end,
                                             bool self_closing,
                                             const TagScan& scan) {
  // rest[0] == '<', rest[tag_end] == '>'.
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  std::string_view body =
      rest.substr(1, tag_end - 1 - (self_closing ? 1 : 0));

  const ParserLimits& limits = options_.limits;
  size_t name_len = ScanName(body, 0);
  if (name_len == 0) return Fail("invalid element name");
  if (name_len > limits.max_name_bytes) {
    return FailLimit("element name exceeds " +
                     std::to_string(limits.max_name_bytes) + " bytes");
  }
  std::string_view name = body.substr(0, name_len);

  if (open_offsets_.empty() && seen_root_) {
    return Fail("multiple document elements (second root <" +
                std::string(name) + ">)");
  }
  if (static_cast<int>(open_offsets_.size()) >= limits.max_depth) {
    return FailLimit("maximum element depth of " +
                     std::to_string(limits.max_depth) + " exceeded");
  }

  if (projection_filter_ != nullptr &&
      projection_filter_->ShouldSkipSubtree(name, open_offsets_.size())) {
    // The whole subtree is irrelevant: account for the start tag, then let
    // the skip scanner race to the matching end tag. The element is never
    // pushed onto the open-element stack and emits no events.
    SkipReport initial;
    initial.elements = 1;
    // The tag scan already paired the quotes; no re-scan of the body.
    initial.node_ids = 1 + scan.quoted_values;
    initial.bytes = tag_end + 1;
    EmitPendingText();
    ConsumeCounted(tag_end + 1, scan.newlines,
                   scan.newlines > 0 ? scan.last_nl + 1 : scan.last_nl);
    if (self_closing) return DeliverSkip(initial);
    skip_scanner_.Begin(initial, open_offsets_.size(), limits.max_depth,
                        options_.report_whitespace_text);
    skip_active_ = true;
    if (obs::flight::Active()) skip_begin_ns_ = obs::NowNs();
    return Progress::kOk;
  }

  // Attributes. Views point into `body` (and thus buffer_) or into reused
  // decode slots; both stay valid until the StartElement callback returns,
  // which happens before Consume() advances past this tag.
  attributes_.clear();
  size_t decode_used = 0;
  size_t i = name_len;
  while (true) {
    size_t ws = i;
    while (i < body.size() && IsWhitespace(body[i])) ++i;
    if (i >= body.size()) break;
    if (i == ws) return Fail("expected whitespace before attribute");
    if (attributes_.size() >= limits.max_attribute_count) {
      return FailLimit("more than " +
                       std::to_string(limits.max_attribute_count) +
                       " attributes on one element");
    }
    size_t attr_len = ScanName(body, i);
    if (attr_len == 0) return Fail("invalid attribute name");
    if (attr_len > limits.max_name_bytes) {
      return FailLimit("attribute name exceeds " +
                       std::to_string(limits.max_name_bytes) + " bytes");
    }
    std::string_view attr_name = body.substr(i, attr_len);
    i += attr_len;
    while (i < body.size() && IsWhitespace(body[i])) ++i;
    if (i >= body.size() || body[i] != '=') {
      return Fail("expected '=' after attribute name '" +
                  std::string(attr_name) + "'");
    }
    ++i;
    while (i < body.size() && IsWhitespace(body[i])) ++i;
    if (i >= body.size() || (body[i] != '"' && body[i] != '\'')) {
      return Fail("attribute value must be quoted");
    }
    char quote = body[i];
    ++i;
    size_t value_end = body.find(quote, i);
    if (value_end == std::string_view::npos) {
      return Fail("unterminated attribute value");
    }
    std::string_view raw_value = body.substr(i, value_end - i);
    if (raw_value.size() > limits.max_attribute_value_bytes) {
      return FailLimit("attribute value exceeds " +
                       std::to_string(limits.max_attribute_value_bytes) +
                       " bytes");
    }
    // One classification pass replaces the three validation probes
    // ('<', forbidden control byte, '&').
    ValueFacts value_facts = scanner_.ScanValue(
        buffer_.data(), buffer_.size(),
        static_cast<size_t>(raw_value.data() - buffer_.data()),
        raw_value.size());
    if (value_facts.has_lt) {
      return Fail("'<' in attribute value");
    }
    if (value_facts.has_ctl) {
      return Fail("control character in attribute value");
    }
    std::string_view value_view = raw_value;
    if (value_facts.has_amp) {
      StatusOr<std::string> value =
          DecodeReferences(raw_value, &entity_references_);
      if (!value.ok()) return Fail(value.status().message());
      if (limits.max_entity_references > 0 &&
          entity_references_ > limits.max_entity_references) {
        return FailLimit(
            "entity-reference budget of " +
            std::to_string(limits.max_entity_references) + " exceeded");
      }
      if (decode_used == attr_decode_slots_.size()) {
        attr_decode_slots_.emplace_back();
      }
      std::string& slot = attr_decode_slots_[decode_used++];
      slot.assign(*value);
      value_view = slot;
    }
    util::Symbol attr_symbol = InternName(attr_name);
    // Interned ids make uniqueness an integer compare (names are equal iff
    // their Symbols are).
    for (const AttributeView& existing : attributes_) {
      if (existing.symbol == attr_symbol) {
        return Fail("duplicate attribute '" + std::string(attr_name) + "'");
      }
    }
    attributes_.push_back({attr_name, value_view, attr_symbol});
    i = value_end + 1;
  }

  EmitPendingText();
  handler_->StartElement(QName(name, InternName(name)),
                         AttributeSpan(attributes_));
  ++element_count_;
  if (self_closing) {
    handler_->EndElement(name);
    if (open_offsets_.empty()) seen_root_ = true;
  } else {
    PushOpenName(name);
  }
  ConsumeCounted(tag_end + 1, scan.newlines,
                 scan.newlines > 0 ? scan.last_nl + 1 : scan.last_nl);
  return Progress::kOk;
}

SaxParser::Progress SaxParser::ParseEndTag(size_t tag_end) {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  std::string_view body = rest.substr(2, tag_end - 2);
  // Fast path: the body is byte-identical to the open element's name — the
  // canonical well-formed shape. That name already passed Name syntax and
  // the length limit at its start tag, and a Name cannot contain newlines,
  // so one memcmp replaces the per-byte name walk, the trailing-whitespace
  // check and the newline count. Any other shape (trailing whitespace,
  // mismatch, empty stack) falls through to the validating path below.
  if (!open_offsets_.empty() && body == TopOpenName()) {
    EmitPendingText();
    handler_->EndElement(body);
    PopOpenName();
    if (open_offsets_.empty()) seen_root_ = true;
    pos_ += tag_end + 1;
    column_ += static_cast<int>(tag_end) + 1;
    seen_any_content_ = true;
    return Progress::kOk;
  }
  size_t name_len = ScanName(body, 0);
  if (name_len == 0) return Fail("invalid end-tag name");
  if (name_len > options_.limits.max_name_bytes) {
    return FailLimit("element name exceeds " +
                     std::to_string(options_.limits.max_name_bytes) +
                     " bytes");
  }
  std::string_view name = body.substr(0, name_len);
  size_t i = name_len;
  while (i < body.size() && IsWhitespace(body[i])) ++i;
  if (i != body.size()) return Fail("junk in end tag");

  if (open_offsets_.empty()) {
    return Fail("end tag </" + std::string(name) + "> with no open element");
  }
  if (TopOpenName() != name) {
    return Fail("mismatched end tag: expected </" + std::string(TopOpenName()) +
                ">, found </" + std::string(name) + ">");
  }
  EmitPendingText();
  handler_->EndElement(name);
  PopOpenName();
  if (open_offsets_.empty()) seen_root_ = true;
  Consume(tag_end + 1);
  return Progress::kOk;
}

SaxParser::Progress SaxParser::ParseComment() {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  size_t end = rest.find("-->", 4);
  if (end == std::string_view::npos) return Progress::kNeedMore;
  std::string_view text = rest.substr(4, end - 4);
  if (text.find("--") != std::string_view::npos) {
    return Fail("'--' inside comment");
  }
  if (!text.empty() && text.back() == '-') {
    return Fail("comment must not end with '-'");
  }
  if (options_.report_comments) {
    EmitPendingText();
    handler_->Comment(text);
  }
  Consume(end + 3);
  return Progress::kOk;
}

SaxParser::Progress SaxParser::ParseCData() {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  size_t end = rest.find("]]>", 9);
  if (end == std::string_view::npos) return Progress::kNeedMore;
  if (open_offsets_.empty()) {
    return Fail("CDATA section outside the document element");
  }
  std::string_view text = rest.substr(9, end - 9);
  // CDATA content may legally contain '<' and '&', so only the control-byte
  // and whitespace facts matter (and no decoding happens).
  CDataFacts facts =
      scanner_.ScanCData(buffer_.data(), buffer_.size(), pos_ + 9, end - 9);
  if (Status s = AppendTextPiece(text, /*decode=*/false, /*has_amp=*/false,
                                 facts.has_ctl, facts.all_ws);
      !s.ok()) {
    return Progress::kError;
  }
  Consume(end + 3);
  return Progress::kOk;
}

SaxParser::Progress SaxParser::ParsePi() {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  size_t end = rest.find("?>", 2);
  if (end == std::string_view::npos) return Progress::kNeedMore;
  std::string_view body = rest.substr(2, end - 2);
  size_t name_len = ScanName(body, 0);
  if (name_len == 0) return Fail("invalid processing-instruction target");
  if (name_len > options_.limits.max_name_bytes) {
    return FailLimit("processing-instruction target exceeds " +
                     std::to_string(options_.limits.max_name_bytes) +
                     " bytes");
  }
  std::string_view target = body.substr(0, name_len);
  std::string_view data = body.substr(name_len);
  while (!data.empty() && IsWhitespace(data.front())) data.remove_prefix(1);

  bool is_xml_decl = target.size() == 3 &&
                     (target[0] == 'x' || target[0] == 'X') &&
                     (target[1] == 'm' || target[1] == 'M') &&
                     (target[2] == 'l' || target[2] == 'L');
  if (is_xml_decl) {
    if (seen_any_content_) {
      return Fail("XML declaration not at start of document");
    }
  } else if (options_.report_processing_instructions) {
    EmitPendingText();
    handler_->ProcessingInstruction(target, data);
  }
  Consume(end + 2);
  return Progress::kOk;
}

SaxParser::Progress SaxParser::ParseDoctype() {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  if (seen_root_ || !open_offsets_.empty()) {
    return Fail("DOCTYPE after the document element started");
  }
  // Skip to the matching '>' of the declaration, honoring the optional
  // internal subset in [...] and quoted literals.
  char quote = 0;
  int bracket_depth = 0;
  for (size_t i = 9; i < rest.size(); ++i) {
    char c = rest[i];
    if (quote != 0) {
      if (c == quote) quote = 0;
      continue;
    }
    switch (c) {
      case '"':
      case '\'':
        quote = c;
        break;
      case '[':
        ++bracket_depth;
        break;
      case ']':
        if (bracket_depth > 0) --bracket_depth;
        break;
      case '>':
        if (bracket_depth == 0) {
          Consume(i + 1);
          return Progress::kOk;
        }
        break;
      default:
        break;
    }
  }
  return Progress::kNeedMore;
}

Status ParseString(std::string_view document, ContentHandler* handler,
                   ParserOptions options) {
  SaxParser parser(handler, options);
  XAOS_RETURN_IF_ERROR(parser.Feed(document));
  return parser.Finish();
}

}  // namespace xaos::xml
