#include "xml/sax_parser.h"

#include <cstring>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/timer.h"
#include "util/string_util.h"
#include "util/symbol_table.h"
#include "xml/entities.h"

namespace xaos::xml {
namespace {

// Longest markup introducer we must see in full before we can classify the
// construct: "<![CDATA[".
constexpr size_t kMaxIntroducer = 9;

// Forwards every event to the wrapped handler, charging the time spent
// inside it to Phase::kMatch. The parser subtracts this from each Feed's
// wall time to get the parse share (see ParserOptions::phase_timers).
class MatchTimingHandler : public ContentHandler {
 public:
  MatchTimingHandler(ContentHandler* inner, obs::PhaseTimers* timers)
      : inner_(inner), timers_(timers) {}

  void StartDocument() override { Timed([&] { inner_->StartDocument(); }); }
  void EndDocument() override { Timed([&] { inner_->EndDocument(); }); }
  void StartElement(const QName& name, AttributeSpan attributes) override {
    Timed([&] { inner_->StartElement(name, attributes); });
  }
  void EndElement(std::string_view name) override {
    Timed([&] { inner_->EndElement(name); });
  }
  void Characters(std::string_view text) override {
    Timed([&] { inner_->Characters(text); });
  }
  void Comment(std::string_view text) override {
    Timed([&] { inner_->Comment(text); });
  }
  void ProcessingInstruction(std::string_view target,
                             std::string_view data) override {
    Timed([&] { inner_->ProcessingInstruction(target, data); });
  }
  void SkippedSubtree(const SkipReport& report) override {
    Timed([&] { inner_->SkippedSubtree(report); });
  }

 private:
  template <typename Fn>
  void Timed(Fn&& fn) {
    uint64_t start = obs::NowNs();
    fn();
    timers_->Add(obs::Phase::kMatch, obs::NowNs() - start);
  }

  ContentHandler* inner_;
  obs::PhaseTimers* timers_;
};

}  // namespace

SaxParser::SaxParser(ContentHandler* handler, ParserOptions options)
    : handler_(handler), options_(options) {
  if (options_.phase_timers != nullptr) {
    timing_wrapper_ =
        std::make_unique<MatchTimingHandler>(handler, options_.phase_timers);
    handler_ = timing_wrapper_.get();
  }
  projection_filter_ = options_.projection_filter;
  if (projection_filter_ != nullptr &&
      (!options_.coalesce_text || options_.report_comments ||
       options_.report_processing_instructions)) {
    // Skipping cannot reproduce these event streams exactly (see
    // ParserOptions::projection_filter); fall back to a full parse.
    projection_filter_ = nullptr;
    if (obs::Enabled()) {
      obs::MetricsRegistry::Default()
          .GetCounter("xaos_projection_disabled_total")
          ->Increment();
    }
  }
}

bool SaxParser::IsWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

bool SaxParser::IsNameStartChar(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':' || c >= 0x80;
}

bool SaxParser::IsNameChar(unsigned char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

size_t SaxParser::ScanName(std::string_view s, size_t i) {
  if (i >= s.size() || !IsNameStartChar(static_cast<unsigned char>(s[i]))) {
    return 0;
  }
  size_t n = 1;
  while (i + n < s.size() && IsNameChar(static_cast<unsigned char>(s[i + n]))) {
    ++n;
  }
  return n;
}

void SaxParser::Consume(size_t n) {
  // Jump newline to newline with memchr instead of classifying every byte;
  // only the tail after the last newline contributes to the column.
  const char* p = buffer_.data() + pos_;
  size_t remaining = n;
  while (remaining > 0) {
    const char* nl = static_cast<const char*>(std::memchr(p, '\n', remaining));
    if (nl == nullptr) {
      column_ += static_cast<int>(remaining);
      break;
    }
    ++line_;
    column_ = 1;
    remaining -= static_cast<size_t>(nl - p) + 1;
    p = nl + 1;
  }
  pos_ += n;
  seen_any_content_ = true;
}

SaxParser::Progress SaxParser::Fail(std::string message) {
  return FailWith(StatusCode::kParseError, std::move(message));
}

SaxParser::Progress SaxParser::FailLimit(std::string message) {
  if (obs::Enabled()) {
    obs::MetricsRegistry::Default()
        .GetCounter("xaos_limit_rejections_total")
        ->Increment();
  }
  return FailWith(StatusCode::kResourceExhausted, std::move(message));
}

SaxParser::Progress SaxParser::FailWith(StatusCode code, std::string message) {
  error_ = Status(code, message + " at line " + std::to_string(line_) +
                            ", column " + std::to_string(column_));
  if (obs::Enabled()) {
    obs::MetricsRegistry::Default()
        .GetCounter("xaos_parse_errors_total")
        ->Increment();
  }
  return Progress::kError;
}

Status SaxParser::Feed(std::string_view chunk) {
  if (!error_.ok()) return error_;
  if (finished_) {
    return InvalidArgumentError("Feed() after Finish()");
  }
  // Phase split: everything in this call is parse time except what the
  // timing wrapper attributes to the match phase meanwhile.
  uint64_t start = 0, match_before = 0;
  obs::PhaseTimers* timers = options_.phase_timers;
  if (timers != nullptr) {
    start = obs::NowNs();
    match_before = timers->Ns(obs::Phase::kMatch);
  }
  obs::flight::ScopedSpan feed_span(obs::flight::SpanKind::kParse);
  if (feed_span.active()) {
    feed_span.span()->value = static_cast<int64_t>(chunk.size());
  }
  bytes_fed_ += chunk.size();
  const ParserLimits& limits = options_.limits;
  if (limits.max_total_bytes > 0 && bytes_fed_ > limits.max_total_bytes) {
    FailLimit("document exceeds " + std::to_string(limits.max_total_bytes) +
              " bytes");
    return error_;
  }
  if (!started_document_) {
    started_document_ = true;
    handler_->StartDocument();
  }
  // Compact the consumed prefix before growing the buffer.
  if (pos_ > 0) {
    buffer_.erase(0, pos_);
    pos_ = 0;
  }
  buffer_.append(chunk.data(), chunk.size());
  Progress p = Pump();
  // Whatever Pump left unconsumed is one incomplete token (plus a few
  // held-back text bytes); bound it so a stream that never closes a
  // construct cannot grow the buffer without limit.
  if (p != Progress::kError && limits.max_token_bytes > 0 &&
      buffer_.size() - pos_ > limits.max_token_bytes) {
    p = FailLimit("unterminated token exceeds " +
                  std::to_string(limits.max_token_bytes) + " bytes");
  }
  if (timers != nullptr) {
    uint64_t total = obs::NowNs() - start;
    uint64_t match = timers->Ns(obs::Phase::kMatch) - match_before;
    timers->Add(obs::Phase::kParse, total > match ? total - match : 0);
  }
  if (p == Progress::kError) return error_;
  return Status::Ok();
}

Status SaxParser::Finish() {
  if (!error_.ok()) return error_;
  if (finished_) return Status::Ok();
  if (!started_document_) {
    started_document_ = true;
    handler_->StartDocument();
  }
  finished_ = true;
  if (skip_active_) {
    Fail("unexpected end of document inside a skipped subtree");
    return error_;
  }
  if (pos_ < buffer_.size()) {
    // Leftover input that Pump() could not complete. Either it is trailing
    // text (legal only if whitespace at top level) or an unterminated token.
    std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
    if (rest.find('<') == std::string_view::npos &&
        rest.find('&') == std::string_view::npos) {
      if (Status s = AppendText(rest, /*decode=*/false); !s.ok()) {
        return error_ = s;
      }
      Consume(rest.size());
    } else {
      Fail("unexpected end of document inside markup");
      return error_;
    }
  }
  if (text_pending_) {
    if (!IsAllXmlWhitespace(text_accum_)) {
      Fail("character data outside the document element");
      return error_;
    }
    text_pending_ = false;
    text_accum_.clear();
  }
  if (!open_elements_.empty()) {
    Fail("unexpected end of document: unclosed element <" +
         open_elements_.back() + ">");
    return error_;
  }
  if (!seen_root_) {
    Fail("document has no root element");
    return error_;
  }
  uint64_t start = 0, match_before = 0;
  obs::PhaseTimers* timers = options_.phase_timers;
  if (timers != nullptr) {
    start = obs::NowNs();
    match_before = timers->Ns(obs::Phase::kMatch);
  }
  handler_->EndDocument();
  if (timers != nullptr) {
    uint64_t total = obs::NowNs() - start;
    uint64_t match = timers->Ns(obs::Phase::kMatch) - match_before;
    timers->Add(obs::Phase::kParse, total > match ? total - match : 0);
  }
  // Once per document, fold the parser's counters into the process-wide
  // registry; free when metrics are off.
  if (obs::Enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("xaos_parser_documents_total")->Increment();
    registry.GetCounter("xaos_parser_bytes_total")->Increment(bytes_fed_);
    registry.GetCounter("xaos_parser_elements_total")
        ->Increment(element_count_);
    registry.GetCounter("xaos_parser_text_events_total")
        ->Increment(text_event_count_);
  }
  return Status::Ok();
}

void SaxParser::EmitPendingText() {
  if (!text_pending_) return;
  text_pending_ = false;
  if (text_accum_.empty()) return;
  if (options_.report_whitespace_text || !IsAllXmlWhitespace(text_accum_)) {
    ++text_event_count_;
    handler_->Characters(text_accum_);
  }
  text_accum_.clear();
}

Status SaxParser::AppendText(std::string_view raw, bool decode) {
  if (open_elements_.empty() && !IsAllXmlWhitespace(raw)) {
    Fail(seen_root_ ? "character data after the document element"
                    : "character data before the document element");
    return error_;
  }
  // The XML Char production excludes C0 controls (other than tab/LF/CR)
  // even inside CDATA; literal bytes get the same treatment decoded
  // character references always had.
  if (FindForbiddenControlByte(raw) != std::string_view::npos) {
    Fail("control character in character data");
    return error_;
  }
  if (decode && !raw.empty() &&
      std::memchr(raw.data(), '&', raw.size()) != nullptr) {
    StatusOr<std::string> decoded = DecodeReferences(raw, &entity_references_);
    if (!decoded.ok()) {
      Fail(decoded.status().message());
      return error_;
    }
    if (options_.limits.max_entity_references > 0 &&
        entity_references_ > options_.limits.max_entity_references) {
      FailLimit("entity-reference budget of " +
                std::to_string(options_.limits.max_entity_references) +
                " exceeded");
      return error_;
    }
    text_accum_ += *decoded;
  } else {
    text_accum_.append(raw.data(), raw.size());
  }
  text_pending_ = true;
  if (!options_.coalesce_text) EmitPendingText();
  return Status::Ok();
}

SaxParser::Progress SaxParser::Pump() {
  while (pos_ < buffer_.size()) {
    Progress p = skip_active_          ? PumpSkip()
                 : (buffer_[pos_] == '<') ? ParseMarkup()
                                          : ParseText();
    if (p != Progress::kOk) {
      return p == Progress::kNeedMore ? Progress::kOk : p;
    }
  }
  return Progress::kOk;
}

SaxParser::Progress SaxParser::PumpSkip() {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  size_t consumed = 0;
  SkipScanner::State state = skip_scanner_.Scan(rest, &consumed);
  // Consume before reporting an error so line/column point at the
  // offending construct, as they do in normal parse mode.
  if (consumed > 0) Consume(consumed);
  switch (state) {
    case SkipScanner::State::kScanning:
      return Progress::kNeedMore;
    case SkipScanner::State::kDone:
      skip_active_ = false;
      return DeliverSkip(skip_scanner_.report());
    case SkipScanner::State::kError:
      return skip_scanner_.limit_error()
                 ? FailLimit(skip_scanner_.error_message())
                 : Fail(skip_scanner_.error_message());
  }
  return Progress::kError;  // unreachable
}

SaxParser::Progress SaxParser::DeliverSkip(const SkipReport& report) {
  if (open_elements_.empty()) seen_root_ = true;
  if (obs::Enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("xaos_projection_subtrees_skipped_total")
        ->Increment();
    registry.GetCounter("xaos_projection_bytes_skipped_total")
        ->Increment(report.bytes);
  }
  if (obs::flight::Active()) {
    obs::flight::Span span;
    span.kind = obs::flight::SpanKind::kSkipScan;
    span.end_ns = obs::NowNs();
    // A self-closing skip never armed the scanner; render it as a point.
    span.begin_ns = skip_begin_ns_ != 0 ? skip_begin_ns_ : span.end_ns;
    span.value = static_cast<int64_t>(report.bytes);
    span.value2 = static_cast<int64_t>(report.elements);
    obs::flight::Emit(span);
  }
  skip_begin_ns_ = 0;
  handler_->SkippedSubtree(report);
  return Progress::kOk;
}

SaxParser::Progress SaxParser::ParseText() {
  const char* base = buffer_.data();
  const char* from = base + pos_;
  size_t avail = buffer_.size() - pos_;
  const char* lt = static_cast<const char*>(std::memchr(from, '<', avail));
  size_t run = (lt == nullptr) ? avail : static_cast<size_t>(lt - from);
  std::string_view text(from, run);

  // "]]>" must not appear literally in character data (XML 1.0 §2.4);
  // only the CDATA-end scanner may consume it.
  if (text.find("]]>") != std::string_view::npos) {
    return Fail("']]>' in character data");
  }
  if (lt == nullptr) {
    // No markup yet. Hold back a trailing incomplete entity reference so it
    // is not split across chunks; everything before it can be emitted. An
    // overlong reference is not held back — the decode below rejects it
    // now instead of buffering an unbounded '&'-payload.
    size_t amp = text.rfind('&');
    if (amp != std::string_view::npos &&
        text.find(';', amp) == std::string_view::npos &&
        text.size() - amp <= kMaxReferenceBodyBytes + 1) {
      text = text.substr(0, amp);
    }
    // Likewise hold back a trailing "]" / "]]" so a "]]>" split across
    // chunks is still caught by the scan above on the next Feed. Two
    // brackets suffice: any "]]>" ends with exactly these.
    size_t trail = 0;
    while (trail < 2 && trail < text.size() &&
           text[text.size() - 1 - trail] == ']') {
      ++trail;
    }
    text.remove_suffix(trail);
    if (text.empty()) return Progress::kNeedMore;
  }
  if (Status s = AppendText(text, /*decode=*/true); !s.ok()) {
    return Progress::kError;
  }
  Consume(text.size());
  return (lt == nullptr) ? Progress::kNeedMore : Progress::kOk;
}

SaxParser::Progress SaxParser::ParseMarkup() {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  // Wait for enough characters to classify the construct unambiguously.
  if (rest.size() < 2) return Progress::kNeedMore;
  if (rest[1] == '/') {
    size_t gt = rest.find('>', 2);
    if (gt == std::string_view::npos) return Progress::kNeedMore;
    return ParseEndTag(gt);
  }
  if (rest[1] == '?') return ParsePi();
  if (rest[1] == '!') {
    if (rest.size() < kMaxIntroducer &&
        (StartsWith(std::string_view("<!--").substr(0, rest.size()), rest) ||
         StartsWith(std::string_view("<![CDATA[").substr(0, rest.size()),
                    rest) ||
         StartsWith(std::string_view("<!DOCTYPE").substr(0, rest.size()),
                    rest))) {
      return Progress::kNeedMore;
    }
    if (StartsWith(rest, "<!--")) return ParseComment();
    if (StartsWith(rest, "<![CDATA[")) return ParseCData();
    if (StartsWith(rest, "<!DOCTYPE")) return ParseDoctype();
    return Fail("unsupported markup declaration");
  }
  size_t end;
  bool self_closing;
  Progress p = FindStartTagEnd(&end, &self_closing);
  if (p != Progress::kOk) return p;
  return ParseStartTag(end, self_closing);
}

SaxParser::Progress SaxParser::FindStartTagEnd(size_t* end,
                                               bool* self_closing) {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  // memchr from candidate '>' to candidate '>': scan for the nearest
  // closing angle, then check only the span before it for a quote (which
  // would hide the '>') or a stray '<'. Tags without attribute values hit
  // the fast path: one memchr for '>' plus three bounded probes.
  size_t i = 1;
  for (;;) {
    if (i >= rest.size()) return Progress::kNeedMore;
    const char* base = rest.data() + i;
    size_t avail = rest.size() - i;
    const char* gt = static_cast<const char*>(std::memchr(base, '>', avail));
    // Without any '>' the tag cannot end in this buffer, quoted or not.
    if (gt == nullptr) return Progress::kNeedMore;
    size_t span = static_cast<size_t>(gt - base);
    const char* q1 = static_cast<const char*>(std::memchr(base, '"', span));
    const char* q2 = static_cast<const char*>(std::memchr(base, '\'', span));
    const char* quote = (q1 != nullptr && (q2 == nullptr || q1 < q2)) ? q1 : q2;
    const char* lt = static_cast<const char*>(std::memchr(
        base, '<', quote != nullptr ? static_cast<size_t>(quote - base) : span));
    if (lt != nullptr) return Fail("'<' inside tag");
    if (quote == nullptr) {
      size_t at = static_cast<size_t>(gt - rest.data());
      *end = at;
      *self_closing = (at >= 2 && rest[at - 1] == '/');
      return Progress::kOk;
    }
    // Skip the quoted attribute value and rescan behind it.
    const char* rest_end = rest.data() + rest.size();
    const char* close = static_cast<const char*>(std::memchr(
        quote + 1, *quote, static_cast<size_t>(rest_end - (quote + 1))));
    if (close == nullptr) return Progress::kNeedMore;
    i = static_cast<size_t>(close + 1 - rest.data());
  }
}

SaxParser::Progress SaxParser::ParseStartTag(size_t tag_end,
                                             bool self_closing) {
  // rest[0] == '<', rest[tag_end] == '>'.
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  std::string_view body =
      rest.substr(1, tag_end - 1 - (self_closing ? 1 : 0));

  const ParserLimits& limits = options_.limits;
  size_t name_len = ScanName(body, 0);
  if (name_len == 0) return Fail("invalid element name");
  if (name_len > limits.max_name_bytes) {
    return FailLimit("element name exceeds " +
                     std::to_string(limits.max_name_bytes) + " bytes");
  }
  std::string_view name = body.substr(0, name_len);

  if (open_elements_.empty() && seen_root_) {
    return Fail("multiple document elements (second root <" +
                std::string(name) + ">)");
  }
  if (static_cast<int>(open_elements_.size()) >= limits.max_depth) {
    return FailLimit("maximum element depth of " +
                     std::to_string(limits.max_depth) + " exceeded");
  }

  if (projection_filter_ != nullptr &&
      projection_filter_->ShouldSkipSubtree(name, open_elements_.size())) {
    // The whole subtree is irrelevant: account for the start tag, then let
    // the skip scanner race to the matching end tag. The element is never
    // pushed onto open_elements_ and emits no events.
    SkipReport initial;
    initial.elements = 1;
    initial.node_ids = 1 + SkipScanner::CountQuotedValues(
                               body.substr(name_len));
    initial.bytes = tag_end + 1;
    EmitPendingText();
    Consume(tag_end + 1);
    if (self_closing) return DeliverSkip(initial);
    skip_scanner_.Begin(initial, open_elements_.size(), limits.max_depth,
                        options_.report_whitespace_text);
    skip_active_ = true;
    if (obs::flight::Active()) skip_begin_ns_ = obs::NowNs();
    return Progress::kOk;
  }

  util::SymbolTable& symbols = util::SymbolTable::Global();

  // Attributes. Views point into `body` (and thus buffer_) or into reused
  // decode slots; both stay valid until the StartElement callback returns,
  // which happens before Consume() advances past this tag.
  attributes_.clear();
  size_t decode_used = 0;
  size_t i = name_len;
  while (true) {
    size_t ws = i;
    while (i < body.size() && IsWhitespace(body[i])) ++i;
    if (i >= body.size()) break;
    if (i == ws) return Fail("expected whitespace before attribute");
    if (attributes_.size() >= limits.max_attribute_count) {
      return FailLimit("more than " +
                       std::to_string(limits.max_attribute_count) +
                       " attributes on one element");
    }
    size_t attr_len = ScanName(body, i);
    if (attr_len == 0) return Fail("invalid attribute name");
    if (attr_len > limits.max_name_bytes) {
      return FailLimit("attribute name exceeds " +
                       std::to_string(limits.max_name_bytes) + " bytes");
    }
    std::string_view attr_name = body.substr(i, attr_len);
    i += attr_len;
    while (i < body.size() && IsWhitespace(body[i])) ++i;
    if (i >= body.size() || body[i] != '=') {
      return Fail("expected '=' after attribute name '" +
                  std::string(attr_name) + "'");
    }
    ++i;
    while (i < body.size() && IsWhitespace(body[i])) ++i;
    if (i >= body.size() || (body[i] != '"' && body[i] != '\'')) {
      return Fail("attribute value must be quoted");
    }
    char quote = body[i];
    ++i;
    size_t value_end = body.find(quote, i);
    if (value_end == std::string_view::npos) {
      return Fail("unterminated attribute value");
    }
    std::string_view raw_value = body.substr(i, value_end - i);
    if (raw_value.size() > limits.max_attribute_value_bytes) {
      return FailLimit("attribute value exceeds " +
                       std::to_string(limits.max_attribute_value_bytes) +
                       " bytes");
    }
    if (raw_value.find('<') != std::string_view::npos) {
      return Fail("'<' in attribute value");
    }
    if (FindForbiddenControlByte(raw_value) != std::string_view::npos) {
      return Fail("control character in attribute value");
    }
    std::string_view value_view = raw_value;
    if (raw_value.find('&') != std::string_view::npos) {
      StatusOr<std::string> value =
          DecodeReferences(raw_value, &entity_references_);
      if (!value.ok()) return Fail(value.status().message());
      if (limits.max_entity_references > 0 &&
          entity_references_ > limits.max_entity_references) {
        return FailLimit(
            "entity-reference budget of " +
            std::to_string(limits.max_entity_references) + " exceeded");
      }
      if (decode_used == attr_decode_slots_.size()) {
        attr_decode_slots_.emplace_back();
      }
      std::string& slot = attr_decode_slots_[decode_used++];
      slot.assign(*value);
      value_view = slot;
    }
    util::Symbol attr_symbol = symbols.Intern(attr_name);
    // Interned ids make uniqueness an integer compare (names are equal iff
    // their Symbols are).
    for (const AttributeView& existing : attributes_) {
      if (existing.symbol == attr_symbol) {
        return Fail("duplicate attribute '" + std::string(attr_name) + "'");
      }
    }
    attributes_.push_back({attr_name, value_view, attr_symbol});
    i = value_end + 1;
  }

  EmitPendingText();
  handler_->StartElement(QName(name, symbols.Intern(name)),
                         AttributeSpan(attributes_));
  ++element_count_;
  if (self_closing) {
    handler_->EndElement(name);
    if (open_elements_.empty()) seen_root_ = true;
  } else {
    open_elements_.emplace_back(name);
  }
  Consume(tag_end + 1);
  return Progress::kOk;
}

SaxParser::Progress SaxParser::ParseEndTag(size_t tag_end) {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  std::string_view body = rest.substr(2, tag_end - 2);
  size_t name_len = ScanName(body, 0);
  if (name_len == 0) return Fail("invalid end-tag name");
  if (name_len > options_.limits.max_name_bytes) {
    return FailLimit("element name exceeds " +
                     std::to_string(options_.limits.max_name_bytes) +
                     " bytes");
  }
  std::string_view name = body.substr(0, name_len);
  size_t i = name_len;
  while (i < body.size() && IsWhitespace(body[i])) ++i;
  if (i != body.size()) return Fail("junk in end tag");

  if (open_elements_.empty()) {
    return Fail("end tag </" + std::string(name) + "> with no open element");
  }
  if (open_elements_.back() != name) {
    return Fail("mismatched end tag: expected </" + open_elements_.back() +
                ">, found </" + std::string(name) + ">");
  }
  EmitPendingText();
  handler_->EndElement(name);
  open_elements_.pop_back();
  if (open_elements_.empty()) seen_root_ = true;
  Consume(tag_end + 1);
  return Progress::kOk;
}

SaxParser::Progress SaxParser::ParseComment() {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  size_t end = rest.find("-->", 4);
  if (end == std::string_view::npos) return Progress::kNeedMore;
  std::string_view text = rest.substr(4, end - 4);
  if (text.find("--") != std::string_view::npos) {
    return Fail("'--' inside comment");
  }
  if (!text.empty() && text.back() == '-') {
    return Fail("comment must not end with '-'");
  }
  if (options_.report_comments) {
    EmitPendingText();
    handler_->Comment(text);
  }
  Consume(end + 3);
  return Progress::kOk;
}

SaxParser::Progress SaxParser::ParseCData() {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  size_t end = rest.find("]]>", 9);
  if (end == std::string_view::npos) return Progress::kNeedMore;
  if (open_elements_.empty()) {
    return Fail("CDATA section outside the document element");
  }
  std::string_view text = rest.substr(9, end - 9);
  if (Status s = AppendText(text, /*decode=*/false); !s.ok()) {
    return Progress::kError;
  }
  Consume(end + 3);
  return Progress::kOk;
}

SaxParser::Progress SaxParser::ParsePi() {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  size_t end = rest.find("?>", 2);
  if (end == std::string_view::npos) return Progress::kNeedMore;
  std::string_view body = rest.substr(2, end - 2);
  size_t name_len = ScanName(body, 0);
  if (name_len == 0) return Fail("invalid processing-instruction target");
  if (name_len > options_.limits.max_name_bytes) {
    return FailLimit("processing-instruction target exceeds " +
                     std::to_string(options_.limits.max_name_bytes) +
                     " bytes");
  }
  std::string_view target = body.substr(0, name_len);
  std::string_view data = body.substr(name_len);
  while (!data.empty() && IsWhitespace(data.front())) data.remove_prefix(1);

  bool is_xml_decl = target.size() == 3 &&
                     (target[0] == 'x' || target[0] == 'X') &&
                     (target[1] == 'm' || target[1] == 'M') &&
                     (target[2] == 'l' || target[2] == 'L');
  if (is_xml_decl) {
    if (seen_any_content_) {
      return Fail("XML declaration not at start of document");
    }
  } else if (options_.report_processing_instructions) {
    EmitPendingText();
    handler_->ProcessingInstruction(target, data);
  }
  Consume(end + 2);
  return Progress::kOk;
}

SaxParser::Progress SaxParser::ParseDoctype() {
  std::string_view rest(buffer_.data() + pos_, buffer_.size() - pos_);
  if (seen_root_ || !open_elements_.empty()) {
    return Fail("DOCTYPE after the document element started");
  }
  // Skip to the matching '>' of the declaration, honoring the optional
  // internal subset in [...] and quoted literals.
  char quote = 0;
  int bracket_depth = 0;
  for (size_t i = 9; i < rest.size(); ++i) {
    char c = rest[i];
    if (quote != 0) {
      if (c == quote) quote = 0;
      continue;
    }
    switch (c) {
      case '"':
      case '\'':
        quote = c;
        break;
      case '[':
        ++bracket_depth;
        break;
      case ']':
        if (bracket_depth > 0) --bracket_depth;
        break;
      case '>':
        if (bracket_depth == 0) {
          Consume(i + 1);
          return Progress::kOk;
        }
        break;
      default:
        break;
    }
  }
  return Progress::kNeedMore;
}

Status ParseString(std::string_view document, ContentHandler* handler,
                   ParserOptions options) {
  SaxParser parser(handler, options);
  XAOS_RETURN_IF_ERROR(parser.Feed(document));
  return parser.Finish();
}

}  // namespace xaos::xml
