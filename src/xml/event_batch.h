// Batched event capture for handing a SAX stream across threads.
//
// The live events a SaxParser emits are non-owning: name/value/text views
// point into the parser's transient buffers and die when the callback
// returns. To ship events to matcher threads (core/parallel_fleet.h) they
// are captured into an EventBatch: one flat `std::string` text arena owns
// every byte the batch references, events and attributes are fixed-size
// records holding (offset, size) slices into that arena plus the interned
// name Symbol the producer already paid for. A batch is therefore
// self-contained and position-independent: once sealed it can be replayed
// concurrently by any number of threads (Replay is const; per-consumer
// scratch is caller-provided), and reused via Clear() without releasing its
// arena capacity — steady-state capture does no heap allocation.
//
// EventBatcher is the ContentHandler that fills batches: it forwards every
// event into the current batch and asks its sink to publish when the batch
// reaches the configured event- or byte-budget, or when the document ends.

#ifndef XAOS_XML_EVENT_BATCH_H_
#define XAOS_XML_EVENT_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/symbol_table.h"
#include "xml/sax_event.h"

namespace xaos::xml {

// A fixed-size captured event. Slices index the owning batch's text arena.
struct BatchedEvent {
  enum class Kind : uint8_t {
    kStartDocument,
    kEndDocument,
    kStartElement,
    kEndElement,
    kCharacters,
    // A projection skip (xml/skip_scanner.h): the text slice holds the
    // raw SkipReport bytes; Replay re-emits SkippedSubtree().
    kSkipSubtree,
  };

  Kind kind = Kind::kStartDocument;
  util::Symbol symbol = util::kInvalidSymbol;  // start-element name, if known
  uint32_t text_offset = 0;  // element name or character data
  uint32_t text_size = 0;
  uint32_t attr_begin = 0;   // slice of the batch's attribute records
  uint32_t attr_count = 0;
};

struct BatchedAttribute {
  uint32_t name_offset = 0;
  uint32_t name_size = 0;
  uint32_t value_offset = 0;
  uint32_t value_size = 0;
  util::Symbol symbol = util::kInvalidSymbol;
};

class EventBatch {
 public:
  void Clear() {
    events_.clear();
    attributes_.clear();
    text_.clear();
    aborts_document_ = false;
    sequence_ = 0;
  }

  // Publish-order stamp set by the producer (1-based; 0 = unstamped). The
  // flight recorder uses it to link a producer's dispatch span to the
  // replay spans each consumer emits for the same batch.
  void set_sequence(uint64_t sequence) { sequence_ = sequence; }
  uint64_t sequence() const { return sequence_; }

  bool empty() const { return events_.empty(); }
  size_t event_count() const { return events_.size(); }
  size_t text_bytes() const { return text_.size(); }
  // True if the batch's last event closes the document — the signal a
  // consumer uses to run its end-of-document work.
  bool ends_document() const {
    return !events_.empty() &&
           events_.back().kind == BatchedEvent::Kind::kEndDocument;
  }
  // An abort marker: the producer abandoned the document mid-stream (parse
  // error, limit rejection). Consumers must not replay the batch's events —
  // they may be a partial capture — and should run their end-of-document
  // bookkeeping so the stream stays reusable.
  void MarkAbortsDocument() { aborts_document_ = true; }
  bool aborts_document() const { return aborts_document_; }

  // --- capture side (single producer) ---
  void AddStartDocument() { AddSimple(BatchedEvent::Kind::kStartDocument); }
  void AddEndDocument() { AddSimple(BatchedEvent::Kind::kEndDocument); }
  void AddStartElement(const QName& name, AttributeSpan attributes);
  // `copy_payload` false records the event without copying its bytes into
  // the arena (an empty slice): lean capture for consumers that declared
  // they never read end-element names or character data. The event record
  // itself is always kept — replay must consume exactly one text id per
  // Characters and keep the element stack balanced.
  void AddEndElement(std::string_view name, bool copy_payload = true);
  void AddCharacters(std::string_view text, bool copy_payload = true);
  void AddSkipSubtree(const SkipReport& report);

  // --- replay side (any number of concurrent consumers) ---
  // Re-emits the captured events into `handler` in order. `attr_scratch` is
  // per-consumer reusable storage for the AttributeView span each
  // StartElement exposes; the views (and the name/text views) point into
  // this batch and are valid for the duration of each callback, matching
  // the live-parse contract.
  void Replay(ContentHandler* handler,
              std::vector<AttributeView>* attr_scratch) const;

  // Raw read access for devirtualized batch loops (EngineFleet::ReplayRun):
  // consumers walk the records directly instead of paying one virtual
  // callback per event. Views point into this batch's arena and stay valid
  // until Clear().
  const std::vector<BatchedEvent>& events() const { return events_; }
  const BatchedAttribute& attribute(size_t i) const { return attributes_[i]; }
  std::string_view text_slice(uint32_t offset, uint32_t size) const {
    return Slice(offset, size);
  }

 private:
  void AddSimple(BatchedEvent::Kind kind) {
    BatchedEvent event;
    event.kind = kind;
    events_.push_back(event);
  }
  // Appends `s` to the arena and returns its offset.
  uint32_t AppendText(std::string_view s) {
    uint32_t offset = static_cast<uint32_t>(text_.size());
    text_.append(s.data(), s.size());
    return offset;
  }
  std::string_view Slice(uint32_t offset, uint32_t size) const {
    return std::string_view(text_.data() + offset, size);
  }

  std::vector<BatchedEvent> events_;
  std::vector<BatchedAttribute> attributes_;
  std::string text_;  // arena owning every byte the records reference
  bool aborts_document_ = false;
  uint64_t sequence_ = 0;
};

// ContentHandler that captures the stream into batches and hands each full
// batch to a sink. The sink owns batch allocation/recycling so the batcher
// stays agnostic of the transport (rings, pools, tests).
class EventBatcher : public ContentHandler {
 public:
  class Sink {
   public:
    virtual ~Sink() = default;
    // Returns an empty batch to fill (never null).
    virtual EventBatch* AcquireBatch() = 0;
    // Takes ownership of a filled batch back.
    virtual void PublishBatch(EventBatch* batch) = 0;
  };

  // A batch is published when it holds `max_events` events or its arena
  // reached `max_text_bytes` (soft: the event that crosses the line still
  // joins the batch), and always at EndDocument.
  EventBatcher(Sink* sink, size_t max_events, size_t max_text_bytes)
      : sink_(sink), max_events_(max_events), max_text_bytes_(max_text_bytes) {}

  void StartDocument() override;
  void EndDocument() override;
  void StartElement(const QName& name, AttributeSpan attributes) override;
  void EndElement(std::string_view name) override;
  void Characters(std::string_view text) override;
  void SkippedSubtree(const SkipReport& report) override;

  // Abandons the in-progress document: the current batch (acquired if none
  // is open) is marked as aborting and published, so every consumer sees
  // the abort in stream order after the events already shipped.
  void AbortDocument();

  // Publishes the current batch (if it holds any events) without closing
  // the document — lets a sequential driver drain buffered events so
  // mid-stream verdicts (MatchConfirmed) stay observable.
  void Flush() { PublishCurrent(); }

  // Adaptive batch sizing (ParallelFleet publish coalescing): budgets apply
  // from the next fullness check, the batch currently being filled included.
  void set_max_events(size_t max_events) { max_events_ = max_events; }
  size_t max_events() const { return max_events_; }
  void set_max_text_bytes(size_t max_text_bytes) {
    max_text_bytes_ = max_text_bytes;
  }

  // Lean payload capture: when every consumer has declared it never reads
  // end-element names or character data (no text predicates, no subtree
  // captures), those events are recorded without copying their bytes into
  // the arena. Event counts and ordering — and therefore replay-side node
  // ids — are unaffected. Takes effect from the next event.
  void set_lean_payload(bool lean) { lean_payload_ = lean; }
  bool lean_payload() const { return lean_payload_; }

 private:
  EventBatch* Current() {
    if (current_ == nullptr) current_ = sink_->AcquireBatch();
    return current_;
  }
  void PublishIfFull();
  void PublishCurrent();

  Sink* sink_;
  size_t max_events_;
  size_t max_text_bytes_;
  bool lean_payload_ = false;
  EventBatch* current_ = nullptr;
};

}  // namespace xaos::xml

#endif  // XAOS_XML_EVENT_BATCH_H_
