#include "xml/entities.h"

#include <cstdint>

namespace xaos::xml {
namespace {

bool IsHexDigit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') ||
         (c >= 'A' && c <= 'F');
}

uint32_t HexValue(char c) {
  if (c >= '0' && c <= '9') return static_cast<uint32_t>(c - '0');
  if (c >= 'a' && c <= 'f') return static_cast<uint32_t>(c - 'a' + 10);
  return static_cast<uint32_t>(c - 'A' + 10);
}

// True for code points allowed by the XML 1.0 Char production.
bool IsXmlChar(uint32_t cp) {
  if (cp == 0x9 || cp == 0xA || cp == 0xD) return true;
  if (cp >= 0x20 && cp <= 0xD7FF) return true;
  if (cp >= 0xE000 && cp <= 0xFFFD) return true;
  if (cp >= 0x10000 && cp <= 0x10FFFF) return true;
  return false;
}

}  // namespace

bool AppendUtf8(uint32_t cp, std::string* out) {
  if (!IsXmlChar(cp)) return false;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
  return true;
}

size_t FindForbiddenControlByte(std::string_view text) {
  for (size_t i = 0; i < text.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(text[i]);
    if (c < 0x20 && c != 0x9 && c != 0xA && c != 0xD) return i;
  }
  return std::string_view::npos;
}

StatusOr<std::string> DecodeReferences(std::string_view text,
                                       uint64_t* reference_count) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c != '&') {
      out.push_back(c);
      ++i;
      continue;
    }
    // Bounded scan: a legal reference body fits well inside the cap, so a
    // missing ';' within the window means the reference is broken (or an
    // attack) and we fail without looking at the rest of the payload.
    std::string_view window =
        text.substr(i + 1, kMaxReferenceBodyBytes + 1);
    size_t body_len = window.find(';');
    if (body_len == std::string_view::npos) {
      return ParseError(
          window.size() > kMaxReferenceBodyBytes
              ? "entity reference exceeds " +
                    std::to_string(kMaxReferenceBodyBytes) + " bytes"
              : "unterminated entity reference");
    }
    if (body_len == 0) {
      return ParseError("unterminated entity reference");
    }
    size_t end = i + 1 + body_len;
    if (reference_count != nullptr) ++*reference_count;
    std::string_view body = text.substr(i + 1, end - i - 1);
    if (body == "amp") {
      out.push_back('&');
    } else if (body == "lt") {
      out.push_back('<');
    } else if (body == "gt") {
      out.push_back('>');
    } else if (body == "apos") {
      out.push_back('\'');
    } else if (body == "quot") {
      out.push_back('"');
    } else if (body.size() >= 2 && body[0] == '#') {
      uint32_t cp = 0;
      bool valid = true;
      if (body[1] == 'x' || body[1] == 'X') {
        if (body.size() < 3) valid = false;
        for (size_t k = 2; valid && k < body.size(); ++k) {
          if (!IsHexDigit(body[k]) || cp > 0x10FFFF) {
            valid = false;
          } else {
            cp = cp * 16 + HexValue(body[k]);
          }
        }
      } else {
        for (size_t k = 1; valid && k < body.size(); ++k) {
          if (body[k] < '0' || body[k] > '9' || cp > 0x10FFFF) {
            valid = false;
          } else {
            cp = cp * 10 + static_cast<uint32_t>(body[k] - '0');
          }
        }
      }
      if (!valid || !AppendUtf8(cp, &out)) {
        return ParseError("invalid character reference: &" +
                          std::string(body) + ";");
      }
    } else {
      return ParseError("unknown entity reference: &" + std::string(body) +
                        ";");
    }
    i = end + 1;
  }
  return out;
}

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttributeValue(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\t':
        out += "&#9;";
        break;
      case '\n':
        out += "&#10;";
        break;
      case '\r':
        out += "&#13;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace xaos::xml
