#include "xml/event_batch.h"

#include <cstring>

namespace xaos::xml {

void EventBatch::AddStartElement(const QName& name, AttributeSpan attributes) {
  BatchedEvent event;
  event.kind = BatchedEvent::Kind::kStartElement;
  event.symbol = name.symbol;
  event.text_offset = AppendText(name.text);
  event.text_size = static_cast<uint32_t>(name.text.size());
  event.attr_begin = static_cast<uint32_t>(attributes_.size());
  event.attr_count = static_cast<uint32_t>(attributes.size());
  for (const AttributeView& attr : attributes) {
    BatchedAttribute record;
    record.name_offset = AppendText(attr.name);
    record.name_size = static_cast<uint32_t>(attr.name.size());
    record.value_offset = AppendText(attr.value);
    record.value_size = static_cast<uint32_t>(attr.value.size());
    record.symbol = attr.symbol;
    attributes_.push_back(record);
  }
  events_.push_back(event);
}

void EventBatch::AddEndElement(std::string_view name, bool copy_payload) {
  BatchedEvent event;
  event.kind = BatchedEvent::Kind::kEndElement;
  if (copy_payload) {
    event.text_offset = AppendText(name);
    event.text_size = static_cast<uint32_t>(name.size());
  }
  events_.push_back(event);
}

void EventBatch::AddCharacters(std::string_view text, bool copy_payload) {
  BatchedEvent event;
  event.kind = BatchedEvent::Kind::kCharacters;
  if (copy_payload) {
    event.text_offset = AppendText(text);
    event.text_size = static_cast<uint32_t>(text.size());
  }
  events_.push_back(event);
}

void EventBatch::AddSkipSubtree(const SkipReport& report) {
  BatchedEvent event;
  event.kind = BatchedEvent::Kind::kSkipSubtree;
  // SkipReport is a trivially-copyable POD; ship it through the text arena
  // as raw bytes so the record format stays fixed-size.
  event.text_offset = AppendText(std::string_view(
      reinterpret_cast<const char*>(&report), sizeof(report)));
  event.text_size = static_cast<uint32_t>(sizeof(report));
  events_.push_back(event);
}

void EventBatch::Replay(ContentHandler* handler,
                        std::vector<AttributeView>* attr_scratch) const {
  for (const BatchedEvent& event : events_) {
    switch (event.kind) {
      case BatchedEvent::Kind::kStartDocument:
        handler->StartDocument();
        break;
      case BatchedEvent::Kind::kEndDocument:
        handler->EndDocument();
        break;
      case BatchedEvent::Kind::kStartElement: {
        attr_scratch->clear();
        for (uint32_t i = 0; i < event.attr_count; ++i) {
          const BatchedAttribute& record = attributes_[event.attr_begin + i];
          attr_scratch->push_back(
              AttributeView{Slice(record.name_offset, record.name_size),
                            Slice(record.value_offset, record.value_size),
                            record.symbol});
        }
        handler->StartElement(
            QName(Slice(event.text_offset, event.text_size), event.symbol),
            AttributeSpan(*attr_scratch));
        break;
      }
      case BatchedEvent::Kind::kEndElement:
        handler->EndElement(Slice(event.text_offset, event.text_size));
        break;
      case BatchedEvent::Kind::kCharacters:
        handler->Characters(Slice(event.text_offset, event.text_size));
        break;
      case BatchedEvent::Kind::kSkipSubtree: {
        SkipReport report;
        std::memcpy(&report, text_.data() + event.text_offset,
                    sizeof(report));
        handler->SkippedSubtree(report);
        break;
      }
    }
  }
}

void EventBatcher::StartDocument() {
  Current()->AddStartDocument();
  PublishIfFull();
}

void EventBatcher::EndDocument() {
  Current()->AddEndDocument();
  PublishCurrent();
}

void EventBatcher::StartElement(const QName& name, AttributeSpan attributes) {
  Current()->AddStartElement(name, attributes);
  PublishIfFull();
}

void EventBatcher::EndElement(std::string_view name) {
  Current()->AddEndElement(name, !lean_payload_);
  PublishIfFull();
}

void EventBatcher::Characters(std::string_view text) {
  Current()->AddCharacters(text, !lean_payload_);
  PublishIfFull();
}

void EventBatcher::SkippedSubtree(const SkipReport& report) {
  Current()->AddSkipSubtree(report);
  PublishIfFull();
}

void EventBatcher::AbortDocument() {
  Current()->MarkAbortsDocument();
  PublishCurrent();
}

void EventBatcher::PublishIfFull() {
  if (current_ == nullptr) return;
  if (current_->event_count() >= max_events_ ||
      current_->text_bytes() >= max_text_bytes_) {
    PublishCurrent();
  }
}

void EventBatcher::PublishCurrent() {
  if (current_ == nullptr ||
      (current_->empty() && !current_->aborts_document())) {
    return;
  }
  sink_->PublishBatch(current_);
  current_ = nullptr;
}

}  // namespace xaos::xml
