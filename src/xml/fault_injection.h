// Fault-injecting input source for robustness testing: wraps the chunked
// feeding that xml::ParseFile does, but lets a test (or fuzz target) cut
// the stream short, flip a byte, or force adversarial chunk boundaries —
// the three ways untrusted traffic actually breaks. The wrapper drives the
// same SaxParser/ContentHandler path production uses, so whatever it
// surfaces is exactly what a service would see.

#ifndef XAOS_XML_FAULT_INJECTION_H_
#define XAOS_XML_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace xaos::xml {

// What to do to the stream before the parser sees it.
struct FaultSpec {
  static constexpr size_t kNone = static_cast<size_t>(-1);

  // Drop everything from byte `truncate_at` on (the stream still Finishes,
  // as a closed socket would).
  size_t truncate_at = kNone;
  // XOR the byte at `corrupt_at` with `corrupt_mask` (applied before
  // truncation bounds are evaluated; a mask of 0 leaves the byte intact).
  size_t corrupt_at = kNone;
  uint8_t corrupt_mask = 0xFF;

  // Chunk boundary schedule: the stream is fed in chunks of these sizes,
  // cycling when exhausted (zero entries are treated as 1). Empty: fixed
  // `chunk_bytes` chunks.
  std::vector<size_t> chunk_sizes;
  size_t chunk_bytes = 1024;
};

// Feeds `document`, transformed per `spec`, into a SaxParser driving
// `handler`. Returns the first parser error (Feed or Finish), like
// ParseFile. The faulted bytes are staged once; memory use is O(document).
class FaultInjectingSource {
 public:
  FaultInjectingSource(std::string document, FaultSpec spec);

  // The document after corruption/truncation, as the parser will see it.
  std::string_view effective_document() const { return document_; }

  Status Parse(ContentHandler* handler, ParserOptions options = {}) const;

 private:
  std::string document_;
  FaultSpec spec_;
};

// Reads `path` (as ParseFile would) and parses it through a
// FaultInjectingSource with `spec`.
Status ParseFileWithFaults(const std::string& path, const FaultSpec& spec,
                           ContentHandler* handler, ParserOptions options = {});

}  // namespace xaos::xml

#endif  // XAOS_XML_FAULT_INJECTION_H_
