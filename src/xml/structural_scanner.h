// Vectorized structural front-end for the streaming XML paths.
//
// Both the full SAX parse and the projection skip-scan spend their per-byte
// budget answering the same handful of questions: where is the next '<',
// does this text run contain '&' / ']' / a forbidden control byte, is it
// all whitespace, where does this start tag end once quoted attribute
// values are honored, and how many newlines went by (for byte-exact error
// positions). Before this module each question was a separate pass (memchr
// probes, find(), byte loops). The structural scanner answers all of them
// from ONE classification pass: input is processed in 64-byte blocks, each
// block yielding a set of 64-bit masks — bit i of a mask says byte i of the
// block belongs to that class ('<', '>', '"', '\'', '&', ']', newline,
// whitespace, forbidden control). The masks are the index stream: consumers
// jump from structural position to structural position with ctz/popcount
// instead of inspecting every character.
//
// Three interchangeable kernels produce the masks:
//   * scalar — portable table-driven byte loop; the oracle the others are
//     differentially tested against.
//   * swar   — 64-bit broadcast-compare tricks (Mycroft has-zero), no
//     intrinsics, works on every platform.
//   * sse2 / avx2 — x86 vector compares + movemask, selected at runtime
//     behind a function-pointer table after a cpuid check
//     (util/cpu_features.h). AVX2 code is compiled with a function-level
//     target attribute so the rest of the binary needs no -mavx2.
//
// Every kernel fills the same BlockMasks struct, and all higher-level logic
// (prefix masking at the first '<', quote-state tracking across blocks,
// newline accounting) is backend-independent driver code in this module —
// so backends can only disagree if a kernel mis-classifies a byte, which is
// exactly what the differential tests and fuzz_scanner_diff check.
//
// Chunk-boundary safety: the drivers are pure functions over the span they
// are given; resumability (split quotes, CDATA sections, comments across
// Feed() calls) stays where it always lived — in the parser's and skip
// scanner's held-back-bytes contract. A caller that got kNeedMore simply
// rescans the (bounded) unconsumed suffix when more input arrives.

#ifndef XAOS_XML_STRUCTURAL_SCANNER_H_
#define XAOS_XML_STRUCTURAL_SCANNER_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/statusor.h"

namespace xaos::xml {

inline constexpr size_t kScannerBlockBytes = 64;

enum class ScannerBackend : uint8_t {
  kScalar = 0,
  kSwar = 1,
  kSse2 = 2,
  kAvx2 = 3,
};

// One 64-byte block's classification. Bit i refers to byte i of the block;
// for a block shorter than 64 bytes the excess bits are zero in every mask.
struct BlockMasks {
  uint64_t lt;        // '<'
  uint64_t gt;        // '>'
  uint64_t dquote;    // '"'
  uint64_t squote;    // '\''
  uint64_t amp;       // '&'
  uint64_t rbracket;  // ']'
  uint64_t newline;   // '\n'
  uint64_t ws;        // XML whitespace: space, tab, CR, LF
  uint64_t ctl;       // C0 control other than tab/LF/CR (forbidden in Char)
};

// Kernel signature: classify exactly kScannerBlockBytes bytes at `p`.
// Sub-block tails are staged through a zero-padded buffer by the driver, so
// kernels never read past their 64 bytes and never see a partial block.
using ClassifyBlockFn = void (*)(const char* p, BlockMasks* out);

// Bit i of the result is the parity of bits [0, i] of x: simdjson's
// carry-less-multiply quote trick in portable shift form. Applied to a
// block's quote bits it yields the inside-a-quoted-value region mask
// (opening quote through the byte before the closing quote).
inline uint64_t ScannerPrefixXor(uint64_t x) {
  x ^= x << 1;
  x ^= x << 2;
  x ^= x << 4;
  x ^= x << 8;
  x ^= x << 16;
  x ^= x << 32;
  return x;
}

// --- Backend selection -----------------------------------------------------

// Canonical lowercase name ("scalar", "swar", "sse2", "avx2").
const char* ScannerBackendName(ScannerBackend backend);

// Whether this process can run the backend: compiled in AND supported by
// the CPU (cpuid + OS state for AVX2). kScalar and kSwar are always true.
bool ScannerBackendAvailable(ScannerBackend backend);

// Best available backend in order avx2 > sse2 > swar.
ScannerBackend BestScannerBackend();

// Parses "scalar" / "swar" / "sse2" / "avx2" / "auto". Unknown names and
// backends this machine cannot run yield an InvalidArgument with the list
// of valid choices, so tools can reject bad --scanner= / XAOS_SCANNER
// values with a clear error.
StatusOr<ScannerBackend> ResolveScannerBackend(std::string_view name);

// Process-wide default, used by every parser whose ParserOptions does not
// pin a backend. Lazily initialized on first use: the XAOS_SCANNER
// environment variable if set and valid (an invalid value warns once on
// stderr and falls back), else BestScannerBackend().
ScannerBackend DefaultScannerBackend();
void SetDefaultScannerBackend(ScannerBackend backend);

// --- Drivers ---------------------------------------------------------------

// Facts about a character-data run: everything ParseText() needs to know,
// computed in one classification pass that stops at the first '<'. All
// fields describe the prefix [0, first_lt) — or all of [0, n) when no '<'
// is present (first_lt == npos).
struct TextFacts {
  size_t first_lt;     // offset of the first '<', or npos
  bool has_amp;        // '&' present
  bool has_rbracket;   // ']' present (gates the literal-"]]>" check)
  bool has_ctl;        // forbidden control byte present
  bool all_ws;         // every byte is XML whitespace
  uint32_t newlines;   // '\n' count
  size_t last_nl;      // offset of the last '\n', or npos
};

// Result of scanning a start-tag body for its terminating '>' while
// honoring quoted attribute values.
struct TagScan {
  enum class Kind {
    kEnd,       // `end` is the offset of the closing '>'
    kBadLt,     // an unquoted '<' appeared inside the tag (offset in `end`)
    kNeedMore,  // ran out of input before the tag resolved
  };
  Kind kind;
  size_t end;
  uint64_t quoted_values;  // attribute values closed before the '>'
  uint32_t newlines;       // '\n' count in [0, end) — only valid for kEnd
  size_t last_nl;          // offset of the last '\n' in [0, end), or npos
};

// Facts about one attribute value span: the three validations the parser
// used to make three passes for.
struct ValueFacts {
  bool has_lt;
  bool has_amp;
  bool has_ctl;
};

// Facts about a CDATA-section body (which may legally contain '<').
struct CDataFacts {
  bool has_ctl;
  bool all_ws;
};

// A configured classification front-end with a small block-mask cache.
//
// All drivers address one shared buffer through (base, size, from): blocks
// live on a 64-byte grid anchored at `base`, so consecutive scans over the
// same buffer — text run, then the tag that ends it, then that tag's
// attribute values — land on the same grid and reuse each other's masks.
// A full 64-byte block is classified at most once per pass over the buffer
// (the cache is a tiny direct-mapped array keyed by block offset); partial
// blocks at the buffer tail are classified fresh each time, since more
// bytes may arrive for them. The buffer's owner MUST call
// InvalidateCache() whenever it mutates the buffer (the parser does so in
// Feed(), where compaction shifts the contents).
//
// All offsets in the returned fact structs are relative to `from`.
class StructuralScanner {
 public:
  // Uses the process-wide default backend.
  StructuralScanner();
  explicit StructuralScanner(ScannerBackend backend);

  void SetBackend(ScannerBackend backend);
  ScannerBackend backend() const { return backend_; }

  // Drops all cached block masks. Call after the underlying buffer mutates.
  void InvalidateCache();

  // One-pass facts for the character-data run [from, size) (stopping at the
  // first '<'). Inline fast path: the run resolves (hits its '<') inside
  // the first block — the dominant shape for markup-dense documents.
  TextFacts ScanText(const char* base, size_t size, size_t from) const {
    const size_t bs = from & ~(kScannerBlockBytes - 1);
    if (size - bs >= kScannerBlockBytes) {
      const BlockMasks& m = FullBlock(base, bs);
      const uint64_t valid = ~0ull << (from - bs);
      const uint64_t lt = m.lt & valid;
      if (lt != 0) {
        const unsigned bit = static_cast<unsigned>(__builtin_ctzll(lt));
        TextFacts facts;
        facts.first_lt = bs + bit - from;
        const uint64_t keep =
            valid &
            (bit == 0 ? 0 : (~0ull >> (kScannerBlockBytes - bit)));
        facts.has_amp = (m.amp & keep) != 0;
        facts.has_rbracket = (m.rbracket & keep) != 0;
        facts.has_ctl = (m.ctl & keep) != 0;
        facts.all_ws = (m.ws & keep) == keep;
        facts.newlines = 0;
        facts.last_nl = std::string_view::npos;
        const uint64_t nl = m.newline & keep;
        if (nl != 0) {
          facts.newlines = static_cast<uint32_t>(__builtin_popcountll(nl));
          facts.last_nl =
              bs + 63 - static_cast<unsigned>(__builtin_clzll(nl)) - from;
        }
        return facts;
      }
    }
    return ScanTextGeneral(base, size, from);
  }

  // Scans a start-tag body ([from, size), `from` addressing the byte AFTER
  // the opening '<') for the terminating '>'. `immediate_lt` selects who
  // consumes the scan: the skip scanner fails on an unquoted '<' the moment
  // it sees one, while the full parser reports kBadLt only once a '>'
  // arrives (before that the tag is merely incomplete) — both behaviors
  // predate this module and are preserved bit-for-bit.
  //
  // Inline fast path for the dominant shape — the tag resolves inside its
  // first block with no single quotes. Everything else (multi-block tags,
  // single-quoted values, stray '<', incomplete input) takes the
  // out-of-line general walk. This wrapper is called once per element by
  // both the parser and the skip scanner, so the fast path must not cost a
  // cross-TU call.
  TagScan ScanTag(const char* base, size_t size, size_t from,
                  bool immediate_lt) const {
    const size_t bs = from & ~(kScannerBlockBytes - 1);
    if (size - bs >= kScannerBlockBytes) {
      const BlockMasks& m = FullBlock(base, bs);
      const uint64_t valid = ~0ull << (from - bs);
      if ((m.squote & valid) == 0) {
        const uint64_t dq = m.dquote & valid;
        const uint64_t inside = ScannerPrefixXor(dq);
        const uint64_t gt_eff = m.gt & valid & ~inside;
        const uint64_t lt_eff = m.lt & valid & ~inside;
        if (gt_eff != 0) {
          const unsigned first_gt =
              static_cast<unsigned>(__builtin_ctzll(gt_eff));
          if (lt_eff == 0 ||
              first_gt < static_cast<unsigned>(__builtin_ctzll(lt_eff))) {
            TagScan scan{TagScan::Kind::kEnd, bs + first_gt - from, 0, 0,
                         std::string_view::npos};
            const uint64_t below =
                first_gt == 0 ? 0
                              : (~0ull >> (kScannerBlockBytes - first_gt));
            scan.quoted_values = static_cast<uint64_t>(
                __builtin_popcountll(dq & ~inside & below));
            const uint64_t nl = m.newline & valid & below;
            if (nl != 0) {
              scan.newlines =
                  static_cast<uint32_t>(__builtin_popcountll(nl));
              scan.last_nl = bs + 63 -
                             static_cast<unsigned>(__builtin_clzll(nl)) -
                             from;
            }
            return scan;
          }
        }
      }
    }
    return ScanTagGeneral(base, size, from, immediate_lt);
  }

  // Offset (relative to `from`) of the next '>' at or after `from`, or npos
  // when the buffer ends first. Used for end tags, whose bodies cannot
  // contain quoted values. Inline fast path: the '>' lands in the first
  // block — end tags are short, so this is nearly every call.
  size_t NextGt(const char* base, size_t size, size_t from) const {
    const size_t bs = from & ~(kScannerBlockBytes - 1);
    if (size - bs >= kScannerBlockBytes) {
      const BlockMasks& m = FullBlock(base, bs);
      const uint64_t g = m.gt & (~0ull << (from - bs));
      if (g != 0) {
        return bs + static_cast<unsigned>(__builtin_ctzll(g)) - from;
      }
    }
    return NextGtGeneral(base, size, from);
  }

  // One-pass validation facts for the attribute value [from, from + len).
  // Inline fast path: the value lies within one full block.
  ValueFacts ScanValue(const char* base, size_t size, size_t from,
                       size_t len) const {
    const size_t bs = from & ~(kScannerBlockBytes - 1);
    if (from + len <= bs + kScannerBlockBytes &&
        size - bs >= kScannerBlockBytes) {
      const BlockMasks& m = FullBlock(base, bs);
      const unsigned lo = static_cast<unsigned>(from - bs);
      const uint64_t keep =
          len == 0 ? 0 : ((~0ull >> (kScannerBlockBytes - len)) << lo);
      return ValueFacts{(m.lt & keep) != 0, (m.amp & keep) != 0,
                        (m.ctl & keep) != 0};
    }
    return ScanValueGeneral(base, size, from, len);
  }

  // One-pass facts for the CDATA body [from, from + len).
  CDataFacts ScanCData(const char* base, size_t size, size_t from,
                       size_t len) const;

  // Raw kernel access for consumers that keep their own block-local mask
  // window: the skip scanner walks strictly forward over one span, so a
  // single register-resident block beats the shared cache. Both count
  // classified bytes like the drivers do.
  void ClassifyFullBlock(const char* p, BlockMasks* out) const {
    classify_(p, out);
    bytes_classified_ += kScannerBlockBytes;
  }
  // Classifies the final `len` (< kScannerBlockBytes) bytes of a span by
  // staging them through a zero-padded block and trimming every mask to
  // length (zero padding classifies as control bytes).
  void ClassifyTail(const char* p, size_t len, BlockMasks* out) const;

  // Bytes pushed through the classify kernel since the last Take. Folded
  // into xaos_scanner_bytes_classified_total by the parser at document end.
  uint64_t TakeBytesClassified() {
    uint64_t v = bytes_classified_;
    bytes_classified_ = 0;
    return v;
  }

 private:
  static constexpr size_t kCacheSlots = 4;  // power of two
  struct CacheSlot {
    const char* base = nullptr;
    size_t block = 0;
    bool valid = false;
    BlockMasks masks;
  };

  // Masks for the 64-byte-aligned block at `block_start` (< size). Full
  // blocks come from / go into the cache; the partial block at the buffer
  // tail is classified into *scratch every time.
  const BlockMasks& Block(const char* base, size_t size, size_t block_start,
                          BlockMasks* scratch) const;

  // Cache probe for a block known to be full (block_start + 64 <= size) —
  // the hot case, inlined into the ScanTag fast path.
  const BlockMasks& FullBlock(const char* base, size_t block_start) const {
    CacheSlot& slot = cache_[(block_start >> 6) & (kCacheSlots - 1)];
    if (!(slot.valid && slot.base == base && slot.block == block_start)) {
      classify_(base + block_start, &slot.masks);
      bytes_classified_ += kScannerBlockBytes;
      slot.base = base;
      slot.block = block_start;
      slot.valid = true;
    }
    return slot.masks;
  }

  // General walks behind the inline fast paths.
  TextFacts ScanTextGeneral(const char* base, size_t size, size_t from) const;
  TagScan ScanTagGeneral(const char* base, size_t size, size_t from,
                         bool immediate_lt) const;
  size_t NextGtGeneral(const char* base, size_t size, size_t from) const;
  ValueFacts ScanValueGeneral(const char* base, size_t size, size_t from,
                              size_t len) const;

  ClassifyBlockFn classify_;
  ScannerBackend backend_;
  mutable CacheSlot cache_[kCacheSlots];
  mutable uint64_t bytes_classified_ = 0;
};

// Exposed for the differential tests: raw kernel lookup (nullptr when the
// backend is unavailable) — drivers above are the supported interface.
ClassifyBlockFn ScannerKernelForTest(ScannerBackend backend);

}  // namespace xaos::xml

#endif  // XAOS_XML_STRUCTURAL_SCANNER_H_
