#include "xml/structural_scanner.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/cpu_features.h"

#if defined(__x86_64__) || defined(_M_X64)
#define XAOS_SCANNER_X86_64 1
#include <immintrin.h>
#endif

namespace xaos::xml {
namespace {

constexpr size_t kNpos = std::string_view::npos;
constexpr size_t kBlock = kScannerBlockBytes;

// ---------------------------------------------------------------------------
// Scalar kernel: the oracle. One class-bit table lookup per byte, scattered
// into the nine masks. Deliberately simple — every other kernel must match
// its output bit-for-bit on every possible byte.

enum : uint16_t {
  kClassLt = 1u << 0,
  kClassGt = 1u << 1,
  kClassDq = 1u << 2,
  kClassSq = 1u << 3,
  kClassAmp = 1u << 4,
  kClassRb = 1u << 5,
  kClassNl = 1u << 6,
  kClassWs = 1u << 7,
  kClassCtl = 1u << 8,
};

constexpr uint16_t ClassOf(unsigned char c) {
  uint16_t cls = 0;
  if (c == '<') cls |= kClassLt;
  if (c == '>') cls |= kClassGt;
  if (c == '"') cls |= kClassDq;
  if (c == '\'') cls |= kClassSq;
  if (c == '&') cls |= kClassAmp;
  if (c == ']') cls |= kClassRb;
  if (c == '\n') cls |= kClassNl;
  if (c == ' ' || c == '\t' || c == '\r' || c == '\n') cls |= kClassWs;
  if (c < 0x20 && c != 0x09 && c != 0x0A && c != 0x0D) cls |= kClassCtl;
  return cls;
}

struct ClassTable {
  uint16_t entries[256];
};

constexpr ClassTable MakeClassTable() {
  ClassTable table{};
  for (unsigned i = 0; i < 256; ++i) {
    table.entries[i] = ClassOf(static_cast<unsigned char>(i));
  }
  return table;
}

constexpr ClassTable kClassTable = MakeClassTable();

void ClassifyScalar(const char* p, BlockMasks* out) {
  BlockMasks m{};
  for (size_t i = 0; i < kBlock; ++i) {
    const uint64_t cls =
        kClassTable.entries[static_cast<unsigned char>(p[i])];
    // Most bytes (name and text characters) are class 0 — one predictable
    // branch skips them. Classed bytes update all nine masks branchlessly:
    // a chain of data-dependent `if`s here mispredicts on every structural
    // byte, which the other kernels never pay.
    if (cls == 0) continue;
    const uint64_t bit = 1ull << i;
    m.lt |= bit * (cls & 1);
    m.gt |= bit * ((cls >> 1) & 1);
    m.dquote |= bit * ((cls >> 2) & 1);
    m.squote |= bit * ((cls >> 3) & 1);
    m.amp |= bit * ((cls >> 4) & 1);
    m.rbracket |= bit * ((cls >> 5) & 1);
    m.newline |= bit * ((cls >> 6) & 1);
    m.ws |= bit * ((cls >> 7) & 1);
    m.ctl |= bit * ((cls >> 8) & 1);
  }
  *out = m;
}

// ---------------------------------------------------------------------------
// SWAR kernel: 8 bytes per step with broadcast-compare tricks, no
// intrinsics. Each 8-byte word yields 0x80-flagged match bytes per class
// (Mycroft has-zero on w ^ broadcast), collapsed to an 8-bit mask with the
// multiply-gather trick, then OR'd into the 64-bit block mask at 8*k.

constexpr uint64_t kOnes = 0x0101010101010101ull;
constexpr uint64_t kHighs = 0x8080808080808080ull;

inline uint64_t LoadWordLe(const char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  w = __builtin_bswap64(w);
#endif
  return w;
}

// 0x80 in each byte of `x` that is zero, 0 elsewhere — EXACT positions.
// (The classic Mycroft `(x - kOnes) & ~x & kHighs` form is boolean-exact
// but positionally inexact: subtraction borrows can flag a 0x01 byte that
// sits above a true zero. This carry-free form has no such false flags:
// per byte, (b & 0x7F) + 0x7F sets bit 7 iff the low bits are nonzero, so
// bit 7 of ~(y | x) is set iff the whole byte is zero.)
inline uint64_t ZeroBytes(uint64_t x) {
  const uint64_t k7f = 0x7F7F7F7F7F7F7F7Full;
  const uint64_t y = (x & k7f) + k7f;
  return ~(y | x) & kHighs;
}

// 0x80 in each byte of `w` equal to `c`, 0 elsewhere.
inline uint64_t EqByte(uint64_t w, char c) {
  return ZeroBytes(w ^ (kOnes * static_cast<unsigned char>(c)));
}

// 0x80 in each byte of `w` strictly below 0x20: top three bits all clear.
inline uint64_t Below20(uint64_t w) {
  return ZeroBytes(w & 0xE0E0E0E0E0E0E0E0ull);
}

// Collapses 0x80-flagged bytes into an 8-bit mask (bit k = byte k matched).
inline uint64_t CollapseHighBits(uint64_t flags) {
  return ((flags >> 7) * 0x0102040810204080ull) >> 56;
}

void ClassifySwar(const char* p, BlockMasks* out) {
  BlockMasks m{};
  for (size_t k = 0; k < kBlock / 8; ++k) {
    const uint64_t w = LoadWordLe(p + 8 * k);
    const unsigned shift = static_cast<unsigned>(8 * k);
    const uint64_t tab = EqByte(w, '\t');
    const uint64_t nl = EqByte(w, '\n');
    const uint64_t cr = EqByte(w, '\r');
    const uint64_t sp = EqByte(w, ' ');
    m.lt |= CollapseHighBits(EqByte(w, '<')) << shift;
    m.gt |= CollapseHighBits(EqByte(w, '>')) << shift;
    m.dquote |= CollapseHighBits(EqByte(w, '"')) << shift;
    m.squote |= CollapseHighBits(EqByte(w, '\'')) << shift;
    m.amp |= CollapseHighBits(EqByte(w, '&')) << shift;
    m.rbracket |= CollapseHighBits(EqByte(w, ']')) << shift;
    m.newline |= CollapseHighBits(nl) << shift;
    m.ws |= CollapseHighBits(tab | nl | cr | sp) << shift;
    m.ctl |= CollapseHighBits(Below20(w) & ~(tab | nl | cr)) << shift;
  }
  *out = m;
}

// ---------------------------------------------------------------------------
// SSE2 kernel: 4 x 16-byte compares + movemask. SSE2 is part of the x86-64
// baseline, so on that architecture it always compiles; the runtime cpuid
// check still gates selection for uniformity with AVX2.

#if defined(XAOS_SCANNER_X86_64)

void ClassifySse2(const char* p, BlockMasks* out) {
  BlockMasks m{};
  for (size_t k = 0; k < kBlock / 16; ++k) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16 * k));
    const unsigned shift = static_cast<unsigned>(16 * k);
    auto mask_eq = [&v](char c) {
      return static_cast<uint64_t>(static_cast<unsigned>(
          _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_set1_epi8(c)))));
    };
    const uint64_t tab = mask_eq('\t');
    const uint64_t nl = mask_eq('\n');
    const uint64_t cr = mask_eq('\r');
    const uint64_t sp = mask_eq(' ');
    // v < 0x20 unsigned: min(v, 0x1F) == v.
    const uint64_t below20 = static_cast<uint64_t>(
        static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(
            _mm_min_epu8(v, _mm_set1_epi8(0x1F)), v))));
    m.lt |= mask_eq('<') << shift;
    m.gt |= mask_eq('>') << shift;
    m.dquote |= mask_eq('"') << shift;
    m.squote |= mask_eq('\'') << shift;
    m.amp |= mask_eq('&') << shift;
    m.rbracket |= mask_eq(']') << shift;
    m.newline |= nl << shift;
    m.ws |= (tab | nl | cr | sp) << shift;
    m.ctl |= (below20 & ~(tab | nl | cr)) << shift;
  }
  *out = m;
}

// AVX2 kernel: 2 x 32-byte compares. Compiled with a function-level target
// attribute so the translation unit (and the rest of the binary) does not
// need -mavx2; entry is gated by the cpuid/xgetbv check in
// util/cpu_features.cc.

// gcc does not propagate the enclosing function's target attribute into
// lambdas, so the per-class compare is a free helper function.
__attribute__((target("avx2"))) inline uint64_t MaskEq256(__m256i v, char c) {
  return static_cast<uint64_t>(static_cast<unsigned>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, _mm256_set1_epi8(c)))));
}

__attribute__((target("avx2"))) void ClassifyAvx2(const char* p,
                                                  BlockMasks* out) {
  BlockMasks m{};
  for (size_t k = 0; k < kBlock / 32; ++k) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32 * k));
    const unsigned shift = static_cast<unsigned>(32 * k);
    const uint64_t tab = MaskEq256(v, '\t');
    const uint64_t nl = MaskEq256(v, '\n');
    const uint64_t cr = MaskEq256(v, '\r');
    const uint64_t sp = MaskEq256(v, ' ');
    const uint64_t below20 = static_cast<uint64_t>(
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(
            _mm256_min_epu8(v, _mm256_set1_epi8(0x1F)), v))));
    m.lt |= MaskEq256(v, '<') << shift;
    m.gt |= MaskEq256(v, '>') << shift;
    m.dquote |= MaskEq256(v, '"') << shift;
    m.squote |= MaskEq256(v, '\'') << shift;
    m.amp |= MaskEq256(v, '&') << shift;
    m.rbracket |= MaskEq256(v, ']') << shift;
    m.newline |= nl << shift;
    m.ws |= (tab | nl | cr | sp) << shift;
    m.ctl |= (below20 & ~(tab | nl | cr)) << shift;
  }
  *out = m;
}

#endif  // XAOS_SCANNER_X86_64

// ---------------------------------------------------------------------------
// Dispatch table and process-wide default.

ClassifyBlockFn KernelFor(ScannerBackend backend) {
  switch (backend) {
    case ScannerBackend::kScalar:
      return &ClassifyScalar;
    case ScannerBackend::kSwar:
      return &ClassifySwar;
#if defined(XAOS_SCANNER_X86_64)
    case ScannerBackend::kSse2:
      return util::DetectCpuFeatures().sse2 ? &ClassifySse2 : nullptr;
    case ScannerBackend::kAvx2:
      return util::DetectCpuFeatures().avx2 ? &ClassifyAvx2 : nullptr;
#else
    case ScannerBackend::kSse2:
    case ScannerBackend::kAvx2:
      return nullptr;
#endif
  }
  return nullptr;
}

std::string AvailableBackendList() {
  std::string out;
  for (ScannerBackend backend :
       {ScannerBackend::kScalar, ScannerBackend::kSwar, ScannerBackend::kSse2,
        ScannerBackend::kAvx2}) {
    if (!ScannerBackendAvailable(backend)) continue;
    if (!out.empty()) out += ", ";
    out += ScannerBackendName(backend);
  }
  out += ", auto";
  return out;
}

// kNotSelected until the first DefaultScannerBackend() call or an explicit
// SetDefaultScannerBackend().
constexpr int kNotSelected = -1;
std::atomic<int> g_default_backend{kNotSelected};

ScannerBackend InitDefaultBackend() {
  const char* env = std::getenv("XAOS_SCANNER");
  if (env != nullptr && env[0] != '\0') {
    StatusOr<ScannerBackend> parsed = ResolveScannerBackend(env);
    if (parsed.ok()) return *parsed;
    std::fprintf(stderr, "warning: XAOS_SCANNER: %s\n",
                 std::string(parsed.status().message()).c_str());
  }
  return BestScannerBackend();
}

}  // namespace

const char* ScannerBackendName(ScannerBackend backend) {
  switch (backend) {
    case ScannerBackend::kScalar:
      return "scalar";
    case ScannerBackend::kSwar:
      return "swar";
    case ScannerBackend::kSse2:
      return "sse2";
    case ScannerBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ScannerBackendAvailable(ScannerBackend backend) {
  return KernelFor(backend) != nullptr;
}

ScannerBackend BestScannerBackend() {
  if (ScannerBackendAvailable(ScannerBackend::kAvx2)) {
    return ScannerBackend::kAvx2;
  }
  if (ScannerBackendAvailable(ScannerBackend::kSse2)) {
    return ScannerBackend::kSse2;
  }
  return ScannerBackend::kSwar;
}

StatusOr<ScannerBackend> ResolveScannerBackend(std::string_view name) {
  if (name == "auto") return BestScannerBackend();
  for (ScannerBackend backend :
       {ScannerBackend::kScalar, ScannerBackend::kSwar, ScannerBackend::kSse2,
        ScannerBackend::kAvx2}) {
    if (name != ScannerBackendName(backend)) continue;
    if (!ScannerBackendAvailable(backend)) {
      return InvalidArgumentError("scanner backend '" + std::string(name) +
                                  "' is not supported on this CPU "
                                  "(available: " +
                                  AvailableBackendList() + ")");
    }
    return backend;
  }
  return InvalidArgumentError("unknown scanner backend '" + std::string(name) +
                              "' (available: " + AvailableBackendList() + ")");
}

ScannerBackend DefaultScannerBackend() {
  int current = g_default_backend.load(std::memory_order_relaxed);
  if (current == kNotSelected) {
    const ScannerBackend selected = InitDefaultBackend();
    // A concurrent initializer picks the same value (env + cpuid are
    // stable), so a plain race-free publish is enough.
    g_default_backend.store(static_cast<int>(selected),
                            std::memory_order_relaxed);
    return selected;
  }
  return static_cast<ScannerBackend>(current);
}

void SetDefaultScannerBackend(ScannerBackend backend) {
  if (!ScannerBackendAvailable(backend)) backend = BestScannerBackend();
  g_default_backend.store(static_cast<int>(backend),
                          std::memory_order_relaxed);
}

ClassifyBlockFn ScannerKernelForTest(ScannerBackend backend) {
  return KernelFor(backend);
}

// ---------------------------------------------------------------------------
// StructuralScanner drivers.

StructuralScanner::StructuralScanner()
    : StructuralScanner(DefaultScannerBackend()) {}

StructuralScanner::StructuralScanner(ScannerBackend backend) {
  SetBackend(backend);
}

void StructuralScanner::SetBackend(ScannerBackend backend) {
  ClassifyBlockFn fn = KernelFor(backend);
  if (fn == nullptr) {
    backend = BestScannerBackend();
    fn = KernelFor(backend);
  }
  backend_ = backend;
  classify_ = fn;
  InvalidateCache();
}

void StructuralScanner::InvalidateCache() {
  for (CacheSlot& slot : cache_) slot.valid = false;
}

const BlockMasks& StructuralScanner::Block(const char* base, size_t size,
                                           size_t block_start,
                                           BlockMasks* scratch) const {
  const size_t len = size - block_start;
  if (len >= kBlock) return FullBlock(base, block_start);
  // Partial block at the buffer tail: more bytes may still arrive for it,
  // so it is classified fresh every time and never cached.
  ClassifyTail(base + block_start, len, scratch);
  return *scratch;
}

void StructuralScanner::ClassifyTail(const char* p, size_t len,
                                     BlockMasks* out) const {
  alignas(kBlock) char staged[kBlock] = {};
  std::memcpy(staged, p, len);
  classify_(staged, out);
  bytes_classified_ += len;
  // Zero padding classifies as control bytes; trim every mask to length.
  const uint64_t keep = len == 0 ? 0 : (~0ull >> (kBlock - len));
  out->lt &= keep;
  out->gt &= keep;
  out->dquote &= keep;
  out->squote &= keep;
  out->amp &= keep;
  out->rbracket &= keep;
  out->newline &= keep;
  out->ws &= keep;
  out->ctl &= keep;
}

TextFacts StructuralScanner::ScanTextGeneral(const char* base, size_t size,
                                             size_t from) const {
  TextFacts facts{kNpos, false, false, false, true, 0, kNpos};
  BlockMasks scratch;
  for (size_t bs = from & ~(kBlock - 1); bs < size; bs += kBlock) {
    const BlockMasks& m = Block(base, size, bs, &scratch);
    const size_t len = size - bs < kBlock ? size - bs : kBlock;
    uint64_t valid = len == kBlock ? ~0ull : (~0ull >> (kBlock - len));
    if (bs < from) valid &= ~0ull << (from - bs);
    const uint64_t lt = m.lt & valid;
    uint64_t keep = valid;
    if (lt != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(lt));
      facts.first_lt = bs + bit - from;
      keep = valid & (bit == 0 ? 0 : (~0ull >> (kBlock - bit)));
    }
    facts.has_amp |= (m.amp & keep) != 0;
    facts.has_rbracket |= (m.rbracket & keep) != 0;
    facts.has_ctl |= (m.ctl & keep) != 0;
    facts.all_ws = facts.all_ws && ((m.ws & keep) == keep);
    const uint64_t nl = m.newline & keep;
    if (nl != 0) {
      facts.newlines += static_cast<uint32_t>(__builtin_popcountll(nl));
      facts.last_nl =
          bs + 63 - static_cast<unsigned>(__builtin_clzll(nl)) - from;
    }
    if (lt != 0) break;
  }
  return facts;
}

TagScan StructuralScanner::ScanTagGeneral(const char* base, size_t size,
                                          size_t from,
                                          bool immediate_lt) const {
  TagScan scan{TagScan::Kind::kNeedMore, 0, 0, 0, kNpos};
  size_t bad_lt = kNpos;
  char quote = 0;
  BlockMasks scratch;
  for (size_t bs = from & ~(kBlock - 1); bs < size; bs += kBlock) {
    const BlockMasks& m = Block(base, size, bs, &scratch);
    const size_t len = size - bs < kBlock ? size - bs : kBlock;
    uint64_t valid = len == kBlock ? ~0ull : (~0ull >> (kBlock - len));
    if (bs < from) valid &= ~0ull << (from - bs);
    // Once a stray '<' is recorded in deferred mode, the only outcomes left
    // are kBadLt (at the next '>' anywhere, quoted or not) and kNeedMore —
    // the walk degenerates to a '>' probe.
    if (bad_lt != kNpos) {
      if ((m.gt & valid) != 0) {
        scan.kind = TagScan::Kind::kBadLt;
        scan.end = bad_lt - from;
        return scan;
      }
      continue;
    }
    if ((m.squote & valid) == 0 && quote != '\'') {
      // Branchless fast path (no single quotes in play): prefix-xor turns
      // the double-quote bits into an inside-a-value region mask, blinding
      // '>' and '<' inside attribute values in one step instead of walking
      // structural characters one ctz at a time.
      const uint64_t dq = m.dquote & valid;
      const uint64_t inside =
          ScannerPrefixXor(dq) ^ (quote != 0 ? ~0ull : 0ull);
      const uint64_t closing = dq & ~inside;
      const uint64_t gt_eff = m.gt & valid & ~inside;
      const uint64_t lt_eff = m.lt & valid & ~inside;
      const unsigned first_gt =
          gt_eff != 0 ? static_cast<unsigned>(__builtin_ctzll(gt_eff)) : 64;
      const unsigned first_lt =
          lt_eff != 0 ? static_cast<unsigned>(__builtin_ctzll(lt_eff)) : 64;
      if (first_gt < first_lt) {
        scan.kind = TagScan::Kind::kEnd;
        scan.end = bs + first_gt - from;
        const uint64_t below =
            first_gt == 0 ? 0 : (~0ull >> (kBlock - first_gt));
        scan.quoted_values += static_cast<uint64_t>(
            __builtin_popcountll(closing & below));
        const uint64_t nl = m.newline & valid & below;
        if (nl != 0) {
          scan.newlines += static_cast<uint32_t>(__builtin_popcountll(nl));
          scan.last_nl =
              bs + 63 - static_cast<unsigned>(__builtin_clzll(nl)) - from;
        }
        return scan;
      }
      if (first_lt < 64) {
        if (immediate_lt) {
          scan.kind = TagScan::Kind::kBadLt;
          scan.end = bs + first_lt - from;
          return scan;
        }
        bad_lt = bs + first_lt;
        const uint64_t after = first_lt == 63 ? 0 : (~0ull << (first_lt + 1));
        if ((m.gt & valid & after) != 0) {
          scan.kind = TagScan::Kind::kBadLt;
          scan.end = bad_lt - from;
          return scan;
        }
        continue;
      }
      scan.quoted_values +=
          static_cast<uint64_t>(__builtin_popcountll(closing));
      const uint64_t nl = m.newline & valid;
      if (nl != 0) {
        scan.newlines += static_cast<uint32_t>(__builtin_popcountll(nl));
        scan.last_nl =
            bs + 63 - static_cast<unsigned>(__builtin_clzll(nl)) - from;
      }
      quote = (inside >> 63) != 0 ? '"' : 0;
      continue;
    }
    // Slow path for blocks with single quotes: the per-structural-bit walk.
    uint64_t structural = (m.lt | m.gt | m.dquote | m.squote) & valid;
    while (structural != 0) {
      const unsigned bit = static_cast<unsigned>(__builtin_ctzll(structural));
      structural &= structural - 1;
      const uint64_t b = 1ull << bit;
      const size_t pos = bs + bit;
      if (quote != 0) {
        // Deferred mode reports a recorded stray '<' once ANY later '>'
        // appears — even one inside a quoted value. (The parser's historic
        // memchr loop probed to the raw next '>', quoted or not, and failed
        // on a stray '<' before it; kept bit-for-bit.)
        if ((m.gt & b) != 0 && bad_lt != kNpos) {
          scan.kind = TagScan::Kind::kBadLt;
          scan.end = bad_lt - from;
          return scan;
        }
        if ((quote == '"' && (m.dquote & b) != 0) ||
            (quote == '\'' && (m.squote & b) != 0)) {
          quote = 0;
          ++scan.quoted_values;
        }
        continue;
      }
      if ((m.gt & b) != 0) {
        if (bad_lt != kNpos) {
          scan.kind = TagScan::Kind::kBadLt;
          scan.end = bad_lt - from;
          return scan;
        }
        scan.kind = TagScan::Kind::kEnd;
        scan.end = pos - from;
        const uint64_t below =
            valid & (bit == 0 ? 0 : (~0ull >> (kBlock - bit)));
        const uint64_t nl = m.newline & below;
        if (nl != 0) {
          scan.newlines += static_cast<uint32_t>(__builtin_popcountll(nl));
          scan.last_nl =
              bs + 63 - static_cast<unsigned>(__builtin_clzll(nl)) - from;
        }
        return scan;
      }
      if ((m.lt & b) != 0) {
        if (immediate_lt) {
          scan.kind = TagScan::Kind::kBadLt;
          scan.end = pos - from;
          return scan;
        }
        if (bad_lt == kNpos) bad_lt = pos;
        continue;
      }
      quote = (m.dquote & b) != 0 ? '"' : '\'';
    }
    const uint64_t nl = m.newline & valid;
    if (nl != 0) {
      scan.newlines += static_cast<uint32_t>(__builtin_popcountll(nl));
      scan.last_nl =
          bs + 63 - static_cast<unsigned>(__builtin_clzll(nl)) - from;
    }
  }
  return scan;
}

size_t StructuralScanner::NextGtGeneral(const char* base, size_t size,
                                        size_t from) const {
  BlockMasks scratch;
  for (size_t bs = from & ~(kBlock - 1); bs < size; bs += kBlock) {
    const BlockMasks& m = Block(base, size, bs, &scratch);
    uint64_t g = m.gt;
    if (bs < from) g &= ~0ull << (from - bs);
    if (g != 0) return bs + static_cast<unsigned>(__builtin_ctzll(g)) - from;
  }
  return std::string_view::npos;
}

ValueFacts StructuralScanner::ScanValueGeneral(const char* base, size_t size,
                                               size_t from, size_t len) const {
  ValueFacts facts{false, false, false};
  const size_t end = from + len;
  BlockMasks scratch;
  for (size_t bs = from & ~(kBlock - 1); bs < end; bs += kBlock) {
    const BlockMasks& m = Block(base, size, bs, &scratch);
    uint64_t window = ~0ull;
    if (end - bs < kBlock) window = ~0ull >> (kBlock - (end - bs));
    if (bs < from) window &= ~0ull << (from - bs);
    facts.has_lt |= (m.lt & window) != 0;
    facts.has_amp |= (m.amp & window) != 0;
    facts.has_ctl |= (m.ctl & window) != 0;
  }
  return facts;
}

CDataFacts StructuralScanner::ScanCData(const char* base, size_t size,
                                        size_t from, size_t len) const {
  CDataFacts facts{false, true};
  const size_t end = from + len;
  BlockMasks scratch;
  for (size_t bs = from & ~(kBlock - 1); bs < end; bs += kBlock) {
    const BlockMasks& m = Block(base, size, bs, &scratch);
    uint64_t window = ~0ull;
    if (end - bs < kBlock) window = ~0ull >> (kBlock - (end - bs));
    if (bs < from) window &= ~0ull << (from - bs);
    facts.has_ctl |= (m.ctl & window) != 0;
    facts.all_ws = facts.all_ws && ((m.ws & window) == window);
  }
  return facts;
}

}  // namespace xaos::xml
