#include "xml/sax_event.h"

namespace xaos::xml {

AttributeSpan MakeAttributeViews(const std::vector<Attribute>& attributes,
                                 std::vector<AttributeView>* scratch) {
  scratch->clear();
  scratch->reserve(attributes.size());
  for (const Attribute& attr : attributes) {
    scratch->push_back({attr.name, attr.value, util::kInvalidSymbol});
  }
  return AttributeSpan(*scratch);
}

std::string EventToString(const Event& event) {
  switch (event.kind) {
    case Event::Kind::kStartDocument:
      return "<doc>";
    case Event::Kind::kEndDocument:
      return "</doc>";
    case Event::Kind::kStartElement: {
      std::string out = "<" + event.name;
      for (const Attribute& attr : event.attributes) {
        out += " " + attr.name + "=\"" + attr.value + "\"";
      }
      out += ">";
      return out;
    }
    case Event::Kind::kEndElement:
      return "</" + event.name + ">";
    case Event::Kind::kCharacters:
      return "text(\"" + event.text + "\")";
    case Event::Kind::kComment:
      return "comment(\"" + event.text + "\")";
    case Event::Kind::kProcessingInstruction:
      return "pi(" + event.name + ", \"" + event.text + "\")";
  }
  return "?";
}

void ReplayEvents(const std::vector<Event>& events, ContentHandler* handler) {
  std::vector<AttributeView> scratch;
  for (const Event& event : events) {
    switch (event.kind) {
      case Event::Kind::kStartDocument:
        handler->StartDocument();
        break;
      case Event::Kind::kEndDocument:
        handler->EndDocument();
        break;
      case Event::Kind::kStartElement:
        handler->StartElement(event.name,
                              MakeAttributeViews(event.attributes, &scratch));
        break;
      case Event::Kind::kEndElement:
        handler->EndElement(event.name);
        break;
      case Event::Kind::kCharacters:
        handler->Characters(event.text);
        break;
      case Event::Kind::kComment:
        handler->Comment(event.text);
        break;
      case Event::Kind::kProcessingInstruction:
        handler->ProcessingInstruction(event.name, event.text);
        break;
    }
  }
}

}  // namespace xaos::xml
