// Chunked file input for the streaming parser: parse arbitrarily large
// documents with constant memory.

#ifndef XAOS_XML_FILE_SOURCE_H_
#define XAOS_XML_FILE_SOURCE_H_

#include <string>

#include "util/status.h"
#include "xml/sax_event.h"
#include "xml/sax_parser.h"

namespace xaos::xml {

// Reads `path` in `chunk_bytes` chunks, feeding each into a SaxParser that
// drives `handler`. Use "-" to read standard input. Only the parser's
// internal token buffer is retained between chunks, so memory use is
// independent of file size.
Status ParseFile(const std::string& path, ContentHandler* handler,
                 size_t chunk_bytes = 1 << 16, ParserOptions options = {});

}  // namespace xaos::xml

#endif  // XAOS_XML_FILE_SOURCE_H_
