#include "gen/random_workload.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "query/xtree.h"
#include "query/xtree_builder.h"
#include "util/check.h"
#include "xml/xml_writer.h"

namespace xaos::gen {
namespace {

using query::XNodeId;
using query::XTree;
using xpath::Axis;
using xpath::LocationPath;
using xpath::PredExpr;
using xpath::Step;

std::string Letter(uint64_t i, int alphabet) {
  return std::string(1, static_cast<char>('A' + i % static_cast<uint64_t>(
                                                       alphabet)));
}

// ---------------------------------------------------------------------------
// Random query generation
// ---------------------------------------------------------------------------

// Mutable query-shaped tree; converted to a LocationPath at the end.
struct GNode {
  Axis axis;
  std::string label;
  std::vector<std::unique_ptr<GNode>> kids;
  GNode* main_child = nullptr;  // continuation of the chain, if any
  bool has_parent_kid = false;
};

Axis PickAxis(const GNode& parent, const RandomQueryOptions& options,
              std::mt19937_64& rng) {
  // Weighted choice; descendant and child dominate as in typical queries.
  struct Option {
    Axis axis;
    int weight;
  };
  std::vector<Option> choices{{Axis::kChild, 30}, {Axis::kDescendant, 40}};
  if (options.allow_siblings) {
    choices.push_back({Axis::kFollowingSibling, 10});
    choices.push_back({Axis::kPrecedingSibling, 10});
  }
  if (options.allow_backward) {
    choices.push_back({Axis::kAncestor, 20});
    // A node reached through `child` has a fixed document parent, so a
    // parent-axis branch there is (almost always) unsatisfiable; skip it.
    if (parent.axis != Axis::kChild && !parent.has_parent_kid) {
      choices.push_back({Axis::kParent, 10});
    }
  }
  int total = 0;
  for (const Option& option : choices) total += option.weight;
  int pick = static_cast<int>(rng() % static_cast<uint64_t>(total));
  for (const Option& option : choices) {
    pick -= option.weight;
    if (pick < 0) return option.axis;
  }
  return Axis::kDescendant;
}

// Renders a GNode chain (node, node->main_child, ...) as a location path;
// non-main kids become predicates.
LocationPath RenderChain(const GNode* node, bool absolute) {
  LocationPath path;
  path.absolute = absolute;
  for (const GNode* current = node; current != nullptr;
       current = current->main_child) {
    Step step;
    step.axis = current->axis;
    step.test.kind = xpath::NodeTestKind::kName;
    step.test.name = current->label;
    for (const std::unique_ptr<GNode>& kid : current->kids) {
      if (kid.get() == current->main_child) continue;
      PredExpr pred;
      pred.kind = PredExpr::Kind::kPath;
      pred.path = RenderChain(kid.get(), /*absolute=*/false);
      step.predicates.push_back(std::move(pred));
    }
    path.steps.push_back(std::move(step));
  }
  return path;
}

}  // namespace

LocationPath GenerateRandomPath(const RandomQueryOptions& options,
                                std::mt19937_64& rng) {
  XAOS_CHECK_GE(options.node_tests, 1);
  auto root = std::make_unique<GNode>();
  root->axis = Axis::kDescendant;  // queries anchor anywhere
  root->label = Letter(rng(), options.alphabet);

  std::vector<GNode*> all_nodes{root.get()};
  int remaining = options.node_tests - 1;

  // Main chain: one to three more steps.
  GNode* tail = root.get();
  int chain_extra =
      remaining == 0 ? 0 : 1 + static_cast<int>(rng() % 3);
  chain_extra = std::min(chain_extra, remaining);
  for (int i = 0; i < chain_extra; ++i) {
    auto next = std::make_unique<GNode>();
    next->axis = PickAxis(*tail, options, rng);
    next->label = Letter(rng(), options.alphabet);
    if (next->axis == Axis::kParent) tail->has_parent_kid = true;
    GNode* raw = next.get();
    tail->kids.push_back(std::move(next));
    tail->main_child = raw;
    all_nodes.push_back(raw);
    tail = raw;
  }
  remaining -= chain_extra;

  // Remaining node tests become branching predicates attached to random
  // existing nodes, occasionally extended into two-step predicate chains.
  while (remaining > 0) {
    GNode* attach = all_nodes[rng() % all_nodes.size()];
    auto kid = std::make_unique<GNode>();
    kid->axis = PickAxis(*attach, options, rng);
    kid->label = Letter(rng(), options.alphabet);
    if (kid->axis == Axis::kParent) attach->has_parent_kid = true;
    GNode* raw = kid.get();
    attach->kids.push_back(std::move(kid));
    all_nodes.push_back(raw);
    --remaining;
    if (remaining > 0 && rng() % 2 == 0) {
      auto sub = std::make_unique<GNode>();
      sub->axis = PickAxis(*raw, options, rng);
      sub->label = Letter(rng(), options.alphabet);
      if (sub->axis == Axis::kParent) raw->has_parent_kid = true;
      GNode* sub_raw = sub.get();
      raw->kids.push_back(std::move(sub));
      raw->main_child = sub_raw;
      all_nodes.push_back(sub_raw);
      --remaining;
    }
  }
  return RenderChain(root.get(), /*absolute=*/true);
}

namespace {

// ---------------------------------------------------------------------------
// Document generation: embed instantiations of the query's x-tree
// ---------------------------------------------------------------------------

struct FragNode {
  std::string tag;
  std::vector<std::unique_ptr<FragNode>> children;
};

size_t CountElements(const FragNode& node) {
  size_t total = 1;
  for (const auto& child : node.children) total += CountElements(*child);
  return total;
}

// A fragment that must be placed as an ancestor of the payload built so far.
struct Wrapper {
  std::unique_ptr<FragNode> top;
  FragNode* attach;  // payload goes below this node
  bool direct;       // payload must be a direct child (parent axis)
};

struct Frag {
  std::unique_ptr<FragNode> top;
  FragNode* vnode;  // the node corresponding to the x-node itself
  // Fragments that must be placed as siblings of `top` under its parent.
  std::vector<std::unique_ptr<FragNode>> siblings_before;
  std::vector<std::unique_ptr<FragNode>> siblings_after;
};

class FragmentBuilder {
 public:
  FragmentBuilder(const XTree& tree, const RandomDocOptions& options,
                  std::mt19937_64& rng, XNodeId mutate_target)
      : tree_(tree),
        options_(options),
        rng_(rng),
        mutate_target_(mutate_target) {}

  // Builds a document fragment containing one instantiation of the x-tree
  // (rooted below the virtual root).
  std::unique_ptr<FragNode> Build() {
    std::vector<Wrapper> wrappers;
    // Generated trees have exactly one child below Root; tolerate more by
    // nesting their fragments.
    std::unique_ptr<FragNode> result;
    FragNode* result_attach = nullptr;
    for (XNodeId kid : tree_.node(query::kRootXNode).children) {
      Frag frag = BuildFrag(kid, &wrappers);
      if (!frag.siblings_before.empty() || !frag.siblings_after.empty()) {
        // Wrap in a noise node so the sibling requirements can be met.
        auto wrapper = std::make_unique<FragNode>();
        wrapper->tag = Letter(rng_(), options_.alphabet);
        AttachWithSiblings(wrapper.get(), &frag);
        frag.top = std::move(wrapper);
        frag.vnode = nullptr;
      }
      if (result == nullptr) {
        result = std::move(frag.top);
        result_attach = result.get();
      } else {
        result_attach->children.push_back(std::move(frag.top));
      }
    }
    // Fold the ancestor wrappers around the payload.
    for (Wrapper& wrapper : wrappers) {
      FragNode* attach = wrapper.attach;
      if (!wrapper.direct) {
        attach = MaybePad(attach);
      }
      attach->children.push_back(std::move(result));
      result = std::move(wrapper.top);
    }
    return result;
  }

 private:
  std::string ConcreteLabel(XNodeId v) {
    const query::NodeTestSpec& spec = tree_.node(v).test;
    std::string label = spec.kind == query::NodeTestSpec::Kind::kElement
                            ? spec.name
                            : Letter(rng_(), options_.alphabet);
    if (v == mutate_target_) {
      // Near miss: shift the label to a different letter.
      char c = label.empty() ? 'A' : label[0];
      label = std::string(
          1, static_cast<char>('A' + (c - 'A' + 1) % options_.alphabet));
    }
    return label;
  }

  // Places `sub` under `parent` with its required siblings around it.
  static void AttachWithSiblings(FragNode* parent, Frag* sub) {
    for (auto& node : sub->siblings_before) {
      parent->children.push_back(std::move(node));
    }
    parent->children.push_back(std::move(sub->top));
    for (auto& node : sub->siblings_after) {
      parent->children.push_back(std::move(node));
    }
  }

  // Adds 0-2 noise elements below `node` and returns the deepest one.
  FragNode* MaybePad(FragNode* node) {
    int pad = static_cast<int>(rng_() % 3);
    for (int i = 0; i < pad; ++i) {
      auto filler = std::make_unique<FragNode>();
      filler->tag = Letter(rng_(), options_.alphabet);
      FragNode* raw = filler.get();
      node->children.push_back(std::move(filler));
      node = raw;
    }
    return node;
  }

  Frag BuildFrag(XNodeId v, std::vector<Wrapper>* wrappers) {
    auto node = std::make_unique<FragNode>();
    node->tag = ConcreteLabel(v);
    Frag frag;
    frag.vnode = node.get();
    frag.top = std::move(node);

    for (XNodeId w : tree_.node(v).children) {
      Axis axis = tree_.node(w).incoming_axis;
      switch (axis) {
        case Axis::kChild:
        case Axis::kSelf: {  // self shares the element; approximate by child
          Frag sub = BuildFrag(w, wrappers);
          XAOS_CHECK(sub.top.get() == sub.vnode)
              << "parent-axis branch below a child edge";
          AttachWithSiblings(frag.vnode, &sub);
          break;
        }
        case Axis::kDescendant:
        case Axis::kDescendantOrSelf: {
          Frag sub = BuildFrag(w, wrappers);
          FragNode* attach = MaybePad(frag.vnode);
          AttachWithSiblings(attach, &sub);
          break;
        }
        case Axis::kParent: {
          // w's element becomes the direct parent of v's element.
          Frag sub = BuildFrag(w, wrappers);
          sub.vnode->children.push_back(std::move(frag.top));
          frag.top = std::move(sub.top);
          break;
        }
        case Axis::kAncestor:
        case Axis::kAncestorOrSelf: {
          std::vector<Wrapper> inner;
          Frag sub = BuildFrag(w, &inner);
          // w (and anything wrapping it) must end up above v. Record it; the
          // top-level fold nests all wrappers around the payload.
          Wrapper wrapper;
          wrapper.attach = sub.vnode;
          wrapper.top = std::move(sub.top);
          wrapper.direct = false;
          wrappers->push_back(std::move(wrapper));
          for (Wrapper& w2 : inner) wrappers->push_back(std::move(w2));
          break;
        }
        case Axis::kFollowingSibling: {
          Frag sub = BuildFrag(w, wrappers);
          frag.siblings_after.push_back(std::move(sub.top));
          MoveSiblings(&sub, &frag);
          break;
        }
        case Axis::kPrecedingSibling: {
          Frag sub = BuildFrag(w, wrappers);
          frag.siblings_before.push_back(std::move(sub.top));
          MoveSiblings(&sub, &frag);
          break;
        }
        case Axis::kAttribute:
          // Not produced by the generator; ignore defensively.
          break;
      }
    }
    return frag;
  }

  // Hoists a child fragment's sibling requirements into the enclosing
  // fragment (siblings of a nested node are also placed under the same
  // parent as the node itself only when the node is attached as a sibling;
  // for child/descendant attachment the nested siblings were already placed
  // next to the nested node inside the parent's children list).
  static void MoveSiblings(Frag* from, Frag* into) {
    for (auto& node : from->siblings_before) {
      into->siblings_before.push_back(std::move(node));
    }
    for (auto& node : from->siblings_after) {
      into->siblings_after.push_back(std::move(node));
    }
  }

  const XTree& tree_;
  const RandomDocOptions& options_;
  std::mt19937_64& rng_;
  XNodeId mutate_target_;
};

void EmitFragment(xml::XmlWriter* writer, const FragNode& node) {
  writer->StartElement(node.tag);
  for (const auto& child : node.children) {
    EmitFragment(writer, *child);
  }
  writer->EndElement();
}

}  // namespace

StatusOr<std::string> GenerateDocumentForPath(const LocationPath& path,
                                              const RandomDocOptions& options,
                                              std::mt19937_64& rng) {
  XAOS_ASSIGN_OR_RETURN(XTree tree, query::BuildXTree(path));

  std::string out;
  out.reserve(options.target_elements * 8);
  xml::XmlWriter writer(&out, /*indent=*/0);
  writer.StartElement("doc");
  size_t elements = 1;
  int depth = 1;

  auto chance = [&rng](double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng) < p;
  };

  while (elements < options.target_elements) {
    if (chance(options.full_embed_probability)) {
      FragmentBuilder builder(tree, options, rng, query::kInvalidXNode);
      std::unique_ptr<FragNode> frag = builder.Build();
      elements += CountElements(*frag);
      EmitFragment(&writer, *frag);
    } else if (chance(options.partial_embed_probability)) {
      XNodeId target =
          1 + static_cast<XNodeId>(rng() %
                                   static_cast<uint64_t>(tree.size() - 1));
      FragmentBuilder builder(tree, options, rng, target);
      std::unique_ptr<FragNode> frag = builder.Build();
      elements += CountElements(*frag);
      EmitFragment(&writer, *frag);
    } else if (depth < options.max_noise_depth && chance(0.55)) {
      writer.StartElement(Letter(rng(), options.alphabet));
      ++depth;
      ++elements;
    } else if (depth > 1) {
      writer.EndElement();
      --depth;
    } else {
      writer.StartElement(Letter(rng(), options.alphabet));
      ++depth;
      ++elements;
    }
  }
  while (depth-- > 0) writer.EndElement();
  return out;
}

StatusOr<RandomWorkload> GenerateWorkload(
    const RandomQueryOptions& query_options,
    const RandomDocOptions& doc_options, uint64_t seed) {
  std::mt19937_64 rng(seed);
  RandomWorkload workload;
  workload.path = GenerateRandomPath(query_options, rng);
  workload.expression = xpath::ToString(workload.path);
  XAOS_ASSIGN_OR_RETURN(
      workload.document,
      GenerateDocumentForPath(workload.path, doc_options, rng));
  return workload;
}

}  // namespace xaos::gen
