#include "gen/xmark_generator.h"

#include <algorithm>
#include <random>

#include "gen/wordlist.h"
#include "xml/xml_writer.h"

namespace xaos::gen {
namespace {

using xml::XmlWriter;

// XMark entity counts at scale factor 1.
constexpr double kPeopleAtScale1 = 25500;
constexpr double kItemsAtScale1 = 21750;
constexpr double kOpenAuctionsAtScale1 = 12000;
constexpr double kClosedAuctionsAtScale1 = 9750;
constexpr double kCategoriesAtScale1 = 1000;

constexpr const char* kRegions[] = {"africa",   "asia",     "australia",
                                    "europe",   "namerica", "samerica"};

int Scaled(double base, double scale) {
  return std::max(1, static_cast<int>(base * scale));
}

class Generator {
 public:
  Generator(const XMarkOptions& options, std::string* out)
      : rng_(options.seed), writer_(out, options.indent) {}

  void Run(const XMarkOptions& options) {
    int people = Scaled(kPeopleAtScale1, options.scale);
    int items = Scaled(kItemsAtScale1, options.scale);
    int open_auctions = Scaled(kOpenAuctionsAtScale1, options.scale);
    int closed_auctions = Scaled(kClosedAuctionsAtScale1, options.scale);
    int categories = Scaled(kCategoriesAtScale1, options.scale);

    writer_.WriteDeclaration();
    writer_.StartElement("site");
    WriteRegions(items);
    WriteCategories(categories);
    WriteCatgraph(categories);
    WritePeople(people);
    WriteOpenAuctions(open_auctions, people, items);
    WriteClosedAuctions(closed_auctions, people, items);
    writer_.EndElement();
  }

 private:
  int Uniform(int lo, int hi) {  // inclusive bounds
    return lo + static_cast<int>(rng_() % static_cast<uint64_t>(hi - lo + 1));
  }
  bool Chance(double p) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p;
  }

  void WriteText(int words) {
    writer_.WriteText(RandomSentence(rng_, words));
  }

  // description := text | parlist; parlist := listitem+;
  // listitem := text | parlist (recursive).
  void WriteListitem(int depth) {
    writer_.StartElement("listitem");
    if (depth < 3 && Chance(0.2)) {
      WriteParlist(depth + 1);
    } else {
      writer_.StartElement("text");
      WriteText(Uniform(4, 12));
      writer_.EndElement();
    }
    writer_.EndElement();
  }

  void WriteParlist(int depth) {
    writer_.StartElement("parlist");
    int n = Uniform(2, 4);
    for (int i = 0; i < n; ++i) WriteListitem(depth);
    writer_.EndElement();
  }

  void WriteDescription() {
    writer_.StartElement("description");
    if (Chance(0.3)) {
      WriteParlist(0);
    } else {
      writer_.StartElement("text");
      WriteText(Uniform(6, 20));
      writer_.EndElement();
    }
    writer_.EndElement();
  }

  void WriteItem(int id) {
    writer_.StartElement("item");
    writer_.WriteAttribute("id", "item" + std::to_string(id));
    writer_.WriteTextElement("location", std::string(RandomWord(rng_)));
    writer_.WriteTextElement("quantity", std::to_string(Uniform(1, 5)));
    writer_.WriteTextElement("name", RandomSentence(rng_, 2));
    writer_.StartElement("payment");
    WriteText(3);
    writer_.EndElement();
    WriteDescription();
    writer_.StartElement("shipping");
    WriteText(3);
    writer_.EndElement();
    int incats = Uniform(1, 3);
    for (int i = 0; i < incats; ++i) {
      writer_.StartElement("incategory");
      writer_.WriteAttribute("category",
                             "category" + std::to_string(Uniform(0, 999)));
      writer_.EndElement();
    }
    if (Chance(0.4)) {
      writer_.StartElement("mailbox");
      int mails = Uniform(1, 3);
      for (int i = 0; i < mails; ++i) {
        writer_.StartElement("mail");
        writer_.WriteTextElement("from", RandomSentence(rng_, 2));
        writer_.WriteTextElement("to", RandomSentence(rng_, 2));
        writer_.WriteTextElement("date", RandomDate());
        writer_.StartElement("text");
        WriteText(Uniform(5, 15));
        writer_.EndElement();
        writer_.EndElement();
      }
      writer_.EndElement();
    }
    writer_.EndElement();
  }

  void WriteRegions(int items) {
    writer_.StartElement("regions");
    int region_count = static_cast<int>(std::size(kRegions));
    int next_id = 0;
    for (int r = 0; r < region_count; ++r) {
      writer_.StartElement(kRegions[r]);
      int share = items / region_count + (r < items % region_count ? 1 : 0);
      for (int i = 0; i < share; ++i) WriteItem(next_id++);
      writer_.EndElement();
    }
    writer_.EndElement();
  }

  void WriteCategories(int categories) {
    writer_.StartElement("categories");
    for (int c = 0; c < categories; ++c) {
      writer_.StartElement("category");
      writer_.WriteAttribute("id", "category" + std::to_string(c));
      writer_.WriteTextElement("name", RandomSentence(rng_, 2));
      WriteDescription();
      writer_.EndElement();
    }
    writer_.EndElement();
  }

  void WriteCatgraph(int categories) {
    writer_.StartElement("catgraph");
    for (int e = 0; e < categories; ++e) {
      writer_.StartElement("edge");
      writer_.WriteAttribute(
          "from", "category" + std::to_string(Uniform(0, categories - 1)));
      writer_.WriteAttribute(
          "to", "category" + std::to_string(Uniform(0, categories - 1)));
      writer_.EndElement();
    }
    writer_.EndElement();
  }

  std::string RandomDate() {
    return std::to_string(Uniform(1, 28)) + "/" +
           std::to_string(Uniform(1, 12)) + "/" +
           std::to_string(Uniform(1998, 2001));
  }

  void WritePeople(int people) {
    writer_.StartElement("people");
    for (int p = 0; p < people; ++p) {
      writer_.StartElement("person");
      writer_.WriteAttribute("id", "person" + std::to_string(p));
      writer_.WriteTextElement("name", RandomSentence(rng_, 2));
      std::string email = "mailto:";
      email += RandomWord(rng_);
      email += "@example.org";
      writer_.WriteTextElement("emailaddress", email);
      if (Chance(0.5)) {
        writer_.WriteTextElement("phone", "+" + std::to_string(Uniform(1, 99)) +
                                              " " +
                                              std::to_string(Uniform(0, 999)));
      }
      if (Chance(0.3)) {
        writer_.StartElement("address");
        writer_.WriteTextElement("street", RandomSentence(rng_, 2));
        writer_.WriteTextElement("city", std::string(RandomWord(rng_)));
        writer_.WriteTextElement("country", std::string(RandomWord(rng_)));
        writer_.WriteTextElement("zipcode", std::to_string(Uniform(0, 99)));
        writer_.EndElement();
      }
      if (Chance(0.5)) {
        writer_.StartElement("watches");
        int watches = Uniform(1, 3);
        for (int w = 0; w < watches; ++w) {
          writer_.StartElement("watch");
          writer_.WriteAttribute("open_auction",
                                 "open_auction" + std::to_string(w));
          writer_.EndElement();
        }
        writer_.EndElement();
      }
      writer_.EndElement();
    }
    writer_.EndElement();
  }

  void WriteOpenAuctions(int auctions, int people, int items) {
    writer_.StartElement("open_auctions");
    for (int a = 0; a < auctions; ++a) {
      writer_.StartElement("open_auction");
      writer_.WriteAttribute("id", "open_auction" + std::to_string(a));
      writer_.WriteTextElement("initial", std::to_string(Uniform(1, 200)));
      int bidders = Uniform(0, 4);
      for (int b = 0; b < bidders; ++b) {
        writer_.StartElement("bidder");
        writer_.WriteTextElement("date", RandomDate());
        writer_.StartElement("personref");
        writer_.WriteAttribute(
            "person", "person" + std::to_string(Uniform(0, people - 1)));
        writer_.EndElement();
        writer_.WriteTextElement("increase", std::to_string(Uniform(1, 20)));
        writer_.EndElement();
      }
      writer_.WriteTextElement("current", std::to_string(Uniform(1, 400)));
      writer_.StartElement("itemref");
      writer_.WriteAttribute("item",
                             "item" + std::to_string(Uniform(0, items - 1)));
      writer_.EndElement();
      writer_.StartElement("seller");
      writer_.WriteAttribute(
          "person", "person" + std::to_string(Uniform(0, people - 1)));
      writer_.EndElement();
      writer_.StartElement("annotation");
      writer_.WriteTextElement("author", RandomSentence(rng_, 2));
      WriteDescription();
      writer_.EndElement();
      writer_.WriteTextElement("quantity", std::to_string(Uniform(1, 5)));
      writer_.WriteTextElement("type", Chance(0.5) ? "Regular" : "Featured");
      writer_.StartElement("interval");
      writer_.WriteTextElement("start", RandomDate());
      writer_.WriteTextElement("end", RandomDate());
      writer_.EndElement();
      writer_.EndElement();
    }
    writer_.EndElement();
  }

  void WriteClosedAuctions(int auctions, int people, int items) {
    writer_.StartElement("closed_auctions");
    for (int a = 0; a < auctions; ++a) {
      writer_.StartElement("closed_auction");
      writer_.StartElement("seller");
      writer_.WriteAttribute(
          "person", "person" + std::to_string(Uniform(0, people - 1)));
      writer_.EndElement();
      writer_.StartElement("buyer");
      writer_.WriteAttribute(
          "person", "person" + std::to_string(Uniform(0, people - 1)));
      writer_.EndElement();
      writer_.StartElement("itemref");
      writer_.WriteAttribute("item",
                             "item" + std::to_string(Uniform(0, items - 1)));
      writer_.EndElement();
      writer_.WriteTextElement("price", std::to_string(Uniform(1, 400)));
      writer_.WriteTextElement("date", RandomDate());
      writer_.WriteTextElement("quantity", std::to_string(Uniform(1, 5)));
      writer_.WriteTextElement("type", Chance(0.5) ? "Regular" : "Featured");
      writer_.StartElement("annotation");
      writer_.WriteTextElement("author", RandomSentence(rng_, 2));
      WriteDescription();
      writer_.EndElement();
      writer_.EndElement();
    }
    writer_.EndElement();
  }

  std::mt19937_64 rng_;
  XmlWriter writer_;
};

}  // namespace

std::string GenerateXMark(const XMarkOptions& options) {
  std::string out;
  Generator generator(options, &out);
  generator.Run(options);
  return out;
}

uint64_t ApproximateXMarkElements(double scale) {
  // Average elements per entity, estimated from the generator's structure:
  // item ≈ 17, person ≈ 10, open auction ≈ 22, closed auction ≈ 16,
  // category ≈ 7 (descriptions add recursive parlists on top).
  double total = kItemsAtScale1 * scale * 17 + kPeopleAtScale1 * scale * 10 +
                 kOpenAuctionsAtScale1 * scale * 22 +
                 kClosedAuctionsAtScale1 * scale * 16 +
                 kCategoriesAtScale1 * scale * 7 + 10;
  return static_cast<uint64_t>(total);
}

}  // namespace xaos::gen
