#include "gen/wordlist.h"

namespace xaos::gen {
namespace {

// A fixed vocabulary in the spirit of the XMark generator's Shakespeare
// word list.
constexpr std::string_view kWords[] = {
    "gold",     "silver",   "copper",   "market",  "auction",  "seller",
    "buyer",    "bid",      "price",    "quality", "vintage",  "rare",
    "antique",  "modern",   "classic",  "grand",   "small",    "large",
    "crimson",  "azure",    "emerald",  "amber",   "ivory",    "ebony",
    "harbor",   "village",  "city",     "river",   "mountain", "valley",
    "merchant", "craft",    "guild",    "trade",   "cargo",    "vessel",
    "letter",   "scroll",   "ledger",   "account", "coin",     "note",
    "garden",   "orchard",  "meadow",   "forest",  "grove",    "field",
    "winter",   "summer",   "autumn",   "spring",  "morning",  "evening",
    "north",    "south",    "east",     "west",    "upper",    "lower",
    "first",    "second",   "third",    "final",   "prime",    "chief",
    "quiet",    "loud",     "swift",    "slow",    "bright",   "dark",
    "honest",   "fair",     "noble",    "humble",  "keen",     "bold",
    "wooden",   "iron",     "stone",    "glass",   "woolen",   "linen",
    "painted",  "carved",   "woven",    "forged",  "printed",  "bound",
    "chamber",  "hall",     "tower",    "bridge",  "gate",     "wall",
    "journey",  "voyage",   "passage",  "route",   "path",     "road",
    "story",    "song",     "verse",    "tale",    "fable",    "rhyme",
    "amount",   "measure",  "weight",   "length",  "volume",   "count",
    "offer",    "request",  "promise",  "pledge",  "bargain",  "deal",
};

constexpr int kWordCount = static_cast<int>(std::size(kWords));

}  // namespace

int WordCount() { return kWordCount; }

std::string_view Word(int i) { return kWords[i % kWordCount]; }

std::string_view RandomWord(std::mt19937_64& rng) {
  return kWords[rng() % kWordCount];
}

std::string RandomSentence(std::mt19937_64& rng, int words) {
  std::string out;
  for (int i = 0; i < words; ++i) {
    if (i > 0) out.push_back(' ');
    out += RandomWord(rng);
  }
  return out;
}

}  // namespace xaos::gen
