// XMark-like auction-site document generator.
//
// The paper's Section 6.1 evaluates χαoς against Xalan on documents
// produced by the XMark benchmark generator [15] at scale factors 1/32..4,
// with the query //listitem/ancestor::category//name. This module
// reproduces the XMark document *structure* relevant to that experiment —
// the category/description/parlist/listitem recursion the query probes,
// plus the regions/items, people, and auctions subtrees in the published
// XMark entity ratios — with deterministic pseudo-text. Element counts
// scale linearly with the scale factor, as in XMark (scale 1 ≈ 2M
// elements ≈ 100 MB for the original generator; this one reproduces the
// proportions, and absolute size can be verified with ApproximateElements).

#ifndef XAOS_GEN_XMARK_GENERATOR_H_
#define XAOS_GEN_XMARK_GENERATOR_H_

#include <cstdint>
#include <string>

namespace xaos::gen {

struct XMarkOptions {
  // XMark scale factor; entity counts scale linearly. The defaults follow
  // XMark's published ratios: at scale 1 — 25500 people, 21750 items,
  // 12000 open auctions, 9750 closed auctions, 1000 categories.
  double scale = 0.01;
  uint64_t seed = 42;
  // Spaces of indentation per level; 0 keeps the document compact.
  int indent = 0;
};

// Generates the document text.
std::string GenerateXMark(const XMarkOptions& options);

// A rough prediction of the element count for a scale factor (useful for
// sizing benchmark sweeps without generating).
uint64_t ApproximateXMarkElements(double scale);

// The paper's benchmark query for this document class.
inline constexpr const char* kXMarkPaperQuery =
    "//listitem/ancestor::category//name";

}  // namespace xaos::gen

#endif  // XAOS_GEN_XMARK_GENERATOR_H_
