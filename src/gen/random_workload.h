// The custom XPath / document generator of the paper's Section 6.2.
//
// Generates (a) random Rxp expressions of a given size (number of node
// tests, default 6) over a small tag alphabet, mixing forward and backward
// axes and branching predicates; and (b) for each expression, a random XML
// document in which instantiations of the expression (full matches) and
// mutated instantiations (near matches) are embedded among noise elements,
// "so that for large document sizes the expression has many matches (and
// near matches)".

#ifndef XAOS_GEN_RANDOM_WORKLOAD_H_
#define XAOS_GEN_RANDOM_WORKLOAD_H_

#include <cstdint>
#include <random>
#include <string>

#include "util/statusor.h"
#include "xpath/ast.h"

namespace xaos::gen {

struct RandomQueryOptions {
  int node_tests = 6;     // the paper's expression size
  int alphabet = 8;       // element tags A, B, C, ...
  bool allow_backward = true;   // include parent/ancestor axes
  bool allow_siblings = false;  // include following/preceding-sibling axes
};

// Generates a random location path. The first step is a descendant step
// (queries anchor anywhere in the document); later steps draw from
// child/descendant/parent/ancestor; extra node tests become branching
// predicates. Steps reached through a child (or attribute) edge never grow
// parent-axis branches (which would be trivially unsatisfiable), and each
// node grows at most one parent-axis branch.
xpath::LocationPath GenerateRandomPath(const RandomQueryOptions& options,
                                       std::mt19937_64& rng);

struct RandomDocOptions {
  size_t target_elements = 20000;
  double full_embed_probability = 0.04;    // full instantiation of the query
  double partial_embed_probability = 0.06; // mutated (near-miss) instantiation
  // Documents are deep (nested noise + embedded fragments inside noise), so
  // descendant steps produce overlapping context subtrees — the situation
  // in which per-context navigational evaluation re-visits elements
  // repeatedly while χαoς visits each exactly once.
  int max_noise_depth = 16;
  int alphabet = 8;  // must match the query generator's alphabet
};

// Generates a document for `path` per the options. Returns ParseError /
// Unsupported if the path cannot be compiled to an x-tree (generated paths
// always can).
StatusOr<std::string> GenerateDocumentForPath(const xpath::LocationPath& path,
                                              const RandomDocOptions& options,
                                              std::mt19937_64& rng);

// One Section 6.2 workload unit: expression + document.
struct RandomWorkload {
  xpath::LocationPath path;
  std::string expression;  // ToString(path)
  std::string document;
};

// Convenience: generates a query and a matching document from one seed.
StatusOr<RandomWorkload> GenerateWorkload(const RandomQueryOptions& query_options,
                                          const RandomDocOptions& doc_options,
                                          uint64_t seed);

}  // namespace xaos::gen

#endif  // XAOS_GEN_RANDOM_WORKLOAD_H_
