// Deterministic filler-text vocabulary for the document generators.

#ifndef XAOS_GEN_WORDLIST_H_
#define XAOS_GEN_WORDLIST_H_

#include <random>
#include <string>
#include <string_view>

namespace xaos::gen {

// Number of distinct words available.
int WordCount();

// The i-th word (0 <= i < WordCount()).
std::string_view Word(int i);

// A uniformly random word.
std::string_view RandomWord(std::mt19937_64& rng);

// A space-separated sentence of `words` random words.
std::string RandomSentence(std::mt19937_64& rng, int words);

}  // namespace xaos::gen

#endif  // XAOS_GEN_WORDLIST_H_
