#include "baseline/brute_force_matcher.h"

#include <algorithm>
#include <set>

namespace xaos::baseline {
namespace {

// Pre-order list of x-node ids; parents precede children.
void PreOrder(const query::XTree& tree, query::XNodeId id,
              std::vector<query::XNodeId>* out) {
  out->push_back(id);
  for (query::XNodeId child : tree.node(id).children) {
    PreOrder(tree, child, out);
  }
}

}  // namespace

BruteForceOutcome BruteForceMatch(const dom::Document& document,
                                  const query::XTree& tree,
                                  size_t max_explored) {
  BruteForceOutcome outcome;
  std::vector<query::XNodeId> order;
  PreOrder(tree, query::kRootXNode, &order);
  std::vector<uint32_t> ordinals = ComputeElementOrdinals(document);
  std::vector<query::XNodeId> outputs = tree.OutputNodes();

  // assignment[x-node id] = chosen document node.
  std::vector<NodeRef> assignment(static_cast<size_t>(tree.size()));
  std::set<std::vector<CanonicalItem>> tuple_set;
  std::set<CanonicalItem> item_set;
  size_t explored = 0;

  auto record = [&]() {
    outcome.matched = true;
    std::vector<CanonicalItem> tuple;
    tuple.reserve(outputs.size());
    for (query::XNodeId v : outputs) {
      CanonicalItem item = CanonicalFromRef(
          document, assignment[static_cast<size_t>(v)], ordinals);
      item_set.insert(item);
      tuple.push_back(std::move(item));
    }
    tuple_set.insert(std::move(tuple));
  };

  auto recurse = [&](auto&& self, size_t k) -> void {
    if (explored > max_explored) {
      outcome.complete = false;
      return;
    }
    if (k == order.size()) {
      record();
      return;
    }
    query::XNodeId v = order[k];
    const query::XNode& node = tree.node(v);
    if (v == query::kRootXNode) {
      assignment[static_cast<size_t>(v)] =
          NodeRef{document.document_node(), -1};
      ++explored;
      self(self, k + 1);
      return;
    }
    NodeRef context = assignment[static_cast<size_t>(node.parent)];
    std::vector<NodeRef> candidates;
    AxisNodes(document, context, node.incoming_axis, &candidates, nullptr);
    for (NodeRef candidate : candidates) {
      if (!RefMatchesSpec(document, candidate, node.test)) continue;
      assignment[static_cast<size_t>(v)] = candidate;
      ++explored;
      self(self, k + 1);
      if (!outcome.complete) return;
    }
  };
  recurse(recurse, 0);

  outcome.tuples.assign(tuple_set.begin(), tuple_set.end());
  outcome.items.assign(item_set.begin(), item_set.end());
  return outcome;
}

}  // namespace xaos::baseline
