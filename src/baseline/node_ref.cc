#include "baseline/node_ref.h"

namespace xaos::baseline {
namespace {

using dom::Document;
using dom::kInvalidNode;
using dom::NodeId;
using dom::NodeKind;
using xpath::Axis;

void Touch(uint64_t* counter) {
  if (counter != nullptr) ++*counter;
}

// Appends the subtree below `node` (excluding it) in document order.
void AppendDescendants(const Document& doc, NodeId node,
                       std::vector<NodeRef>* out, uint64_t* counter) {
  NodeId current = node;
  while (true) {
    NodeId next = doc.first_child(current);
    if (next == kInvalidNode || doc.kind(current) == NodeKind::kText) {
      while (current != node && doc.next_sibling(current) == kInvalidNode) {
        current = doc.parent(current);
      }
      if (current == node) break;
      next = doc.next_sibling(current);
    }
    current = next;
    Touch(counter);
    out->push_back({current, -1});
  }
}

}  // namespace

void AxisNodes(const Document& doc, NodeRef context, Axis axis,
               std::vector<NodeRef>* out, uint64_t* visit_counter) {
  if (context.IsAttribute()) {
    switch (axis) {
      case Axis::kSelf:
        Touch(visit_counter);
        out->push_back(context);
        break;
      case Axis::kParent:
      case Axis::kAncestorOrSelf:
        if (axis == Axis::kAncestorOrSelf) {
          Touch(visit_counter);
          out->push_back(context);
        }
        [[fallthrough]];
      case Axis::kAncestor: {
        // The element that carries the attribute, then its ancestors.
        NodeId node = context.node;
        Touch(visit_counter);
        out->push_back({node, -1});
        if (axis != Axis::kParent) {
          for (NodeId up = doc.parent(node); up != kInvalidNode;
               up = doc.parent(up)) {
            Touch(visit_counter);
            out->push_back({up, -1});
          }
        }
        break;
      }
      default:
        break;  // attributes have no children/descendants/attributes
    }
    return;
  }

  NodeId node = context.node;
  switch (axis) {
    case Axis::kChild:
      for (NodeId child = doc.first_child(node); child != kInvalidNode;
           child = doc.next_sibling(child)) {
        Touch(visit_counter);
        out->push_back({child, -1});
      }
      break;
    case Axis::kDescendant:
      AppendDescendants(doc, node, out, visit_counter);
      break;
    case Axis::kDescendantOrSelf:
      Touch(visit_counter);
      out->push_back(context);
      AppendDescendants(doc, node, out, visit_counter);
      break;
    case Axis::kParent:
      if (doc.parent(node) != kInvalidNode) {
        Touch(visit_counter);
        out->push_back({doc.parent(node), -1});
      }
      break;
    case Axis::kAncestor:
      for (NodeId up = doc.parent(node); up != kInvalidNode;
           up = doc.parent(up)) {
        Touch(visit_counter);
        out->push_back({up, -1});
      }
      break;
    case Axis::kAncestorOrSelf:
      Touch(visit_counter);
      out->push_back(context);
      for (NodeId up = doc.parent(node); up != kInvalidNode;
           up = doc.parent(up)) {
        Touch(visit_counter);
        out->push_back({up, -1});
      }
      break;
    case Axis::kSelf:
      Touch(visit_counter);
      out->push_back(context);
      break;
    case Axis::kAttribute:
      if (doc.kind(node) == NodeKind::kElement) {
        const auto& attrs = doc.attributes(node);
        for (size_t i = 0; i < attrs.size(); ++i) {
          Touch(visit_counter);
          out->push_back({node, static_cast<int>(i)});
        }
      }
      break;
    case Axis::kFollowingSibling:
      for (NodeId sib = doc.next_sibling(node); sib != kInvalidNode;
           sib = doc.next_sibling(sib)) {
        Touch(visit_counter);
        out->push_back({sib, -1});
      }
      break;
    case Axis::kPrecedingSibling: {
      if (doc.parent(node) == kInvalidNode) break;
      for (NodeId sib = doc.first_child(doc.parent(node)); sib != node;
           sib = doc.next_sibling(sib)) {
        Touch(visit_counter);
        out->push_back({sib, -1});
      }
      break;
    }
    case Axis::kFollowing:
      // Everything after this node in document order, excluding its own
      // descendants: subtrees of following siblings along the ancestor
      // chain.
      for (NodeId up = node; up != kInvalidNode; up = doc.parent(up)) {
        for (NodeId sib = doc.next_sibling(up); sib != kInvalidNode;
             sib = doc.next_sibling(sib)) {
          Touch(visit_counter);
          out->push_back({sib, -1});
          AppendDescendants(doc, sib, out, visit_counter);
        }
      }
      break;
    case Axis::kPreceding:
      // Everything before this node in document order, excluding its
      // ancestors: subtrees of preceding siblings along the ancestor chain.
      for (NodeId up = node; up != kInvalidNode; up = doc.parent(up)) {
        if (doc.parent(up) == kInvalidNode) break;
        for (NodeId sib = doc.first_child(doc.parent(up)); sib != up;
             sib = doc.next_sibling(sib)) {
          Touch(visit_counter);
          out->push_back({sib, -1});
          AppendDescendants(doc, sib, out, visit_counter);
        }
      }
      break;
  }
}

query::DocNodeKind RefKind(const Document& doc, NodeRef ref) {
  if (ref.IsAttribute()) return query::DocNodeKind::kAttribute;
  switch (doc.kind(ref.node)) {
    case NodeKind::kDocument:
      return query::DocNodeKind::kRoot;
    case NodeKind::kElement:
      return query::DocNodeKind::kElement;
    case NodeKind::kText:
      return query::DocNodeKind::kText;
  }
  return query::DocNodeKind::kElement;
}

bool RefMatchesSpec(const Document& doc, NodeRef ref,
                    const query::NodeTestSpec& spec) {
  query::DocNodeKind kind = RefKind(doc, ref);
  std::string_view name;
  std::string_view value;
  if (ref.IsAttribute()) {
    const xml::Attribute& attr =
        doc.attributes(ref.node)[static_cast<size_t>(ref.attr_index)];
    name = attr.name;
    value = attr.value;
  } else if (kind == query::DocNodeKind::kElement) {
    name = doc.name(ref.node);
  } else if (kind == query::DocNodeKind::kText) {
    value = doc.text(ref.node);
  }
  return query::MatchesSpec(spec, kind, name, value);
}

bool RefMatchesStep(const Document& doc, NodeRef ref,
                    const xpath::Step& step) {
  query::DocNodeKind kind = RefKind(doc, ref);
  using xpath::NodeTestKind;
  if (step.axis == xpath::Axis::kAttribute) {
    if (kind != query::DocNodeKind::kAttribute) return false;
    const xml::Attribute& attr =
        doc.attributes(ref.node)[static_cast<size_t>(ref.attr_index)];
    if (step.test.kind == NodeTestKind::kName && attr.name != step.test.name) {
      return false;
    }
    return !step.compare_literal.has_value() ||
           attr.value == *step.compare_literal;
  }
  switch (step.test.kind) {
    case NodeTestKind::kName:
      return kind == query::DocNodeKind::kElement &&
             doc.name(ref.node) == step.test.name;
    case NodeTestKind::kWildcard:
      return kind == query::DocNodeKind::kElement;
    case NodeTestKind::kText:
      return kind == query::DocNodeKind::kText &&
             (!step.compare_literal.has_value() ||
              doc.text(ref.node) == *step.compare_literal);
  }
  return false;
}

std::vector<uint32_t> ComputeElementOrdinals(const Document& doc) {
  std::vector<uint32_t> ordinals(doc.node_count(), 0);
  uint32_t next = 0;
  // NodeIds are assigned in document order by DomBuilder; number elements
  // in id order and let other nodes inherit their parent element's ordinal.
  for (NodeId id = 0; id < doc.node_count(); ++id) {
    switch (doc.kind(id)) {
      case NodeKind::kDocument:
        ordinals[id] = 0;
        break;
      case NodeKind::kElement:
        ordinals[id] = ++next;
        break;
      case NodeKind::kText:
        ordinals[id] = ordinals[doc.parent(id)];
        break;
    }
  }
  return ordinals;
}

std::string CanonicalItem::ToString() const {
  std::string out;
  switch (kind) {
    case query::DocNodeKind::kRoot:
      out = "#root";
      break;
    case query::DocNodeKind::kElement:
      out = name;
      break;
    case query::DocNodeKind::kAttribute:
      out = "@" + name + "='" + value + "'";
      break;
    case query::DocNodeKind::kText:
      out = "text('" + value + "')";
      break;
  }
  return out + "#" + std::to_string(ordinal);
}

CanonicalItem CanonicalFromRef(const Document& doc, NodeRef ref,
                               const std::vector<uint32_t>& ordinals) {
  CanonicalItem item;
  item.kind = RefKind(doc, ref);
  item.ordinal = ordinals[ref.node];
  if (ref.IsAttribute()) {
    const xml::Attribute& attr =
        doc.attributes(ref.node)[static_cast<size_t>(ref.attr_index)];
    item.name = attr.name;
    item.value = attr.value;
  } else if (item.kind == query::DocNodeKind::kElement) {
    item.name = doc.name(ref.node);
  } else if (item.kind == query::DocNodeKind::kText) {
    item.value = doc.text(ref.node);
  }
  return item;
}

}  // namespace xaos::baseline
