// Shared navigation helpers for the DOM-based engines: a node reference
// type that can also denote attributes, XPath axis enumeration over the
// DOM, node-test matching, and a canonical item representation that makes
// results comparable across engines.

#ifndef XAOS_BASELINE_NODE_REF_H_
#define XAOS_BASELINE_NODE_REF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dom/document.h"
#include "query/xtree.h"
#include "xpath/ast.h"

namespace xaos::baseline {

// A document node: an element / text / document node (attr_index == -1), or
// the attr_index-th attribute of an element.
struct NodeRef {
  dom::NodeId node = dom::kInvalidNode;
  int attr_index = -1;

  bool IsAttribute() const { return attr_index >= 0; }

  friend bool operator==(const NodeRef&, const NodeRef&) = default;
  // Document order: an element precedes its attributes, which precede its
  // content.
  friend auto operator<=>(const NodeRef& a, const NodeRef& b) {
    if (a.node != b.node) return a.node <=> b.node;
    return a.attr_index <=> b.attr_index;
  }
};

// Appends the nodes on `axis` from `context` to `out` (unsorted, may
// contain duplicates across calls). `visit_counter`, if non-null, is
// incremented once per node touched — the cost model of the navigational
// baseline. Attribute contexts support parent/ancestor/self only; other
// axes yield nothing (XPath: attributes have no children).
void AxisNodes(const dom::Document& doc, NodeRef context, xpath::Axis axis,
               std::vector<NodeRef>* out, uint64_t* visit_counter);

// True if `ref` satisfies the node test of `spec`.
bool RefMatchesSpec(const dom::Document& doc, NodeRef ref,
                    const query::NodeTestSpec& spec);

// True if `ref` passes `step`'s axis-independent node test (name/kind and
// optional value comparison).
bool RefMatchesStep(const dom::Document& doc, NodeRef ref,
                    const xpath::Step& step);

// The DocNodeKind of `ref`.
query::DocNodeKind RefKind(const dom::Document& doc, NodeRef ref);

// Element ordinals in document order (document node 0, document element 1,
// ...), aligned with core::ElementInfo::ordinal. Index by NodeId; attribute
// and text nodes map to their owning/parent element's ordinal.
std::vector<uint32_t> ComputeElementOrdinals(const dom::Document& doc);

// Canonical, engine-independent description of a selected node; used to
// compare χαoς results with baseline results in tests and benchmarks.
struct CanonicalItem {
  uint32_t ordinal = 0;
  query::DocNodeKind kind = query::DocNodeKind::kElement;
  std::string name;
  std::string value;

  friend bool operator==(const CanonicalItem&, const CanonicalItem&) = default;
  friend auto operator<=>(const CanonicalItem&, const CanonicalItem&) = default;

  std::string ToString() const;
};

// Builds the canonical item for `ref`. `ordinals` must come from
// ComputeElementOrdinals on the same document.
CanonicalItem CanonicalFromRef(const dom::Document& doc, NodeRef ref,
                               const std::vector<uint32_t>& ordinals);

}  // namespace xaos::baseline

#endif  // XAOS_BASELINE_NODE_REF_H_
