#include "baseline/compare.h"

#include <algorithm>

namespace xaos::baseline {

CanonicalItem CanonicalFromOutputItem(const core::OutputItem& item) {
  CanonicalItem out;
  out.ordinal = item.info.ordinal;
  out.kind = item.info.kind;
  out.name = item.info.name;
  out.value = item.info.value;
  return out;
}

std::vector<CanonicalItem> CanonicalFromResult(
    const core::QueryResult& result) {
  std::vector<CanonicalItem> items;
  items.reserve(result.items.size());
  for (const core::OutputItem& item : result.items) {
    items.push_back(CanonicalFromOutputItem(item));
  }
  std::sort(items.begin(), items.end());
  return items;
}

std::vector<CanonicalItem> CanonicalFromRefs(const dom::Document& document,
                                             const std::vector<NodeRef>& refs) {
  std::vector<uint32_t> ordinals = ComputeElementOrdinals(document);
  std::vector<CanonicalItem> items;
  items.reserve(refs.size());
  for (NodeRef ref : refs) {
    items.push_back(CanonicalFromRef(document, ref, ordinals));
  }
  std::sort(items.begin(), items.end());
  return items;
}

}  // namespace xaos::baseline
