// Converters that bring χαoς and baseline results into the shared
// CanonicalItem representation, for differential tests and benchmarks.

#ifndef XAOS_BASELINE_COMPARE_H_
#define XAOS_BASELINE_COMPARE_H_

#include <vector>

#include "baseline/node_ref.h"
#include "core/result.h"
#include "dom/document.h"

namespace xaos::baseline {

// Converts a χαoς output item.
CanonicalItem CanonicalFromOutputItem(const core::OutputItem& item);

// Converts and sorts a full χαoς result.
std::vector<CanonicalItem> CanonicalFromResult(const core::QueryResult& result);

// Converts and sorts a list of baseline node refs.
std::vector<CanonicalItem> CanonicalFromRefs(
    const dom::Document& document, const std::vector<NodeRef>& refs);

}  // namespace xaos::baseline

#endif  // XAOS_BASELINE_COMPARE_H_
