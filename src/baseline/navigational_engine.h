// A Xalan-style navigational XPath engine over the in-memory DOM.
//
// This is the comparison baseline of the paper's Section 6. Like the Xalan
// engine the paper measures, it (a) requires the whole document in memory,
// (b) evaluates a location path step by step over context node sets, and
// (c) re-evaluates every predicate for every context node with no
// memoization — so expressions with descendant/ancestor steps and nested
// predicates repeatedly re-traverse subtrees (worst case O(D^n), Gottlob et
// al. [11]), which is precisely the behaviour χαoς avoids.

#ifndef XAOS_BASELINE_NAVIGATIONAL_ENGINE_H_
#define XAOS_BASELINE_NAVIGATIONAL_ENGINE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "baseline/node_ref.h"
#include "dom/document.h"
#include "util/statusor.h"
#include "xpath/ast.h"

namespace xaos::baseline {

struct BaselineOptions {
  // Abort with ResourceExhausted after this many node visits (0 =
  // unlimited). Guards benchmark sweeps against the engine's super-linear
  // blow-up on unfavourable expressions.
  uint64_t max_node_visits = 0;
};

class NavigationalEngine {
 public:
  // `document` must outlive the engine.
  explicit NavigationalEngine(const dom::Document* document,
                              BaselineOptions options = {});

  // Evaluates the expression; returns the selected nodes in document order
  // without duplicates. The context node is the document node.
  StatusOr<std::vector<NodeRef>> Evaluate(const xpath::Expression& expression);
  StatusOr<std::vector<NodeRef>> Evaluate(std::string_view xpath);

  // Nodes touched by axis enumeration since construction — the baseline's
  // work measure.
  uint64_t node_visits() const { return node_visits_; }

 private:
  StatusOr<std::vector<NodeRef>> EvaluatePath(const xpath::LocationPath& path,
                                              NodeRef context);
  StatusOr<bool> EvaluatePredicate(const xpath::PredExpr& pred,
                                   NodeRef context);
  Status CheckBudget() const;

  const dom::Document* document_;
  BaselineOptions options_;
  uint64_t node_visits_ = 0;
};

}  // namespace xaos::baseline

#endif  // XAOS_BASELINE_NAVIGATIONAL_ENGINE_H_
