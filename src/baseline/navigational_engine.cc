#include "baseline/navigational_engine.h"

#include <algorithm>

#include "xpath/parser.h"

namespace xaos::baseline {

using xpath::Expression;
using xpath::LocationPath;
using xpath::PredExpr;
using xpath::Step;

NavigationalEngine::NavigationalEngine(const dom::Document* document,
                                       BaselineOptions options)
    : document_(document), options_(options) {}

Status NavigationalEngine::CheckBudget() const {
  if (options_.max_node_visits != 0 &&
      node_visits_ > options_.max_node_visits) {
    return ResourceExhaustedError(
        "baseline exceeded the node-visit budget of " +
        std::to_string(options_.max_node_visits));
  }
  return Status::Ok();
}

StatusOr<std::vector<NodeRef>> NavigationalEngine::Evaluate(
    std::string_view xpath) {
  XAOS_ASSIGN_OR_RETURN(Expression expression,
                        xpath::ParseExpression(xpath));
  return Evaluate(expression);
}

StatusOr<std::vector<NodeRef>> NavigationalEngine::Evaluate(
    const Expression& expression) {
  std::vector<NodeRef> all;
  NodeRef document_node{document_->document_node(), -1};
  for (const LocationPath& path : expression.union_branches) {
    XAOS_ASSIGN_OR_RETURN(std::vector<NodeRef> branch,
                          EvaluatePath(path, document_node));
    all.insert(all.end(), branch.begin(), branch.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

StatusOr<std::vector<NodeRef>> NavigationalEngine::EvaluatePath(
    const LocationPath& path, NodeRef context) {
  NodeRef start =
      path.absolute ? NodeRef{document_->document_node(), -1} : context;
  std::vector<NodeRef> contexts{start};
  std::vector<NodeRef> scratch;
  for (const Step& step : path.steps) {
    std::vector<NodeRef> next;
    for (NodeRef node : contexts) {
      // One axis traversal per context node — Xalan's evaluation strategy:
      // no sharing between context nodes, so overlapping subtrees are
      // visited repeatedly.
      scratch.clear();
      AxisNodes(*document_, node, step.axis, &scratch, &node_visits_);
      XAOS_RETURN_IF_ERROR(CheckBudget());
      for (NodeRef candidate : scratch) {
        if (!RefMatchesStep(*document_, candidate, step)) continue;
        bool keep = true;
        for (const PredExpr& pred : step.predicates) {
          XAOS_ASSIGN_OR_RETURN(bool ok, EvaluatePredicate(pred, candidate));
          if (!ok) {
            keep = false;
            break;
          }
        }
        if (keep) next.push_back(candidate);
      }
    }
    // Xalan keeps context sets in document order and duplicate-free
    // between steps.
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    contexts = std::move(next);
    if (contexts.empty()) break;
  }
  return contexts;
}

StatusOr<bool> NavigationalEngine::EvaluatePredicate(const PredExpr& pred,
                                                     NodeRef context) {
  switch (pred.kind) {
    case PredExpr::Kind::kPath: {
      XAOS_ASSIGN_OR_RETURN(std::vector<NodeRef> nodes,
                            EvaluatePath(pred.path, context));
      return !nodes.empty();
    }
    case PredExpr::Kind::kAnd:
      for (const PredExpr& child : pred.children) {
        XAOS_ASSIGN_OR_RETURN(bool ok, EvaluatePredicate(child, context));
        if (!ok) return false;
      }
      return true;
    case PredExpr::Kind::kOr:
      for (const PredExpr& child : pred.children) {
        XAOS_ASSIGN_OR_RETURN(bool ok, EvaluatePredicate(child, context));
        if (ok) return true;
      }
      return false;
  }
  return InternalError("unknown PredExpr kind");
}

}  // namespace xaos::baseline
