// Exhaustive x-tree matcher over the DOM — the testing oracle.
//
// Enumerates *all* total matchings of an x-tree at Root (paper Section 3.3)
// by backtracking over the document, with none of the streaming machinery.
// Exponential in the worst case, so only suitable for tests; but it
// implements the matching semantics directly from the definition, giving an
// independent ground truth for the engine's results, including multiple
// output nodes and composed (intersection/join) trees.

#ifndef XAOS_BASELINE_BRUTE_FORCE_MATCHER_H_
#define XAOS_BASELINE_BRUTE_FORCE_MATCHER_H_

#include <vector>

#include "baseline/node_ref.h"
#include "dom/document.h"
#include "query/xtree.h"

namespace xaos::baseline {

struct BruteForceOutcome {
  // True if at least one total matching at Root exists.
  bool matched = false;
  // Distinct projections of the matchings onto the output x-nodes
  // (ordered by x-node id), sorted.
  std::vector<std::vector<CanonicalItem>> tuples;
  // Union of all per-output projections, sorted, duplicate-free.
  std::vector<CanonicalItem> items;
  // False if the enumeration hit `max_explored`.
  bool complete = true;
};

// Runs the exhaustive matcher. `max_explored` bounds the number of partial
// assignments considered.
BruteForceOutcome BruteForceMatch(const dom::Document& document,
                                  const query::XTree& tree,
                                  size_t max_explored = 5'000'000);

}  // namespace xaos::baseline

#endif  // XAOS_BASELINE_BRUTE_FORCE_MATCHER_H_
